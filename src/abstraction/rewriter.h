#pragma once
// Backward-rewriting engine over the multilinear BitPoly representation.
//
// Shared by the abstraction extractor and the ideal-membership baseline: a
// polynomial over net-indexed bit variables plus an occurrence index, so that
// substituting a gate-output variable by its tail touches only the terms that
// actually contain it. Under RATO this sequence of substitutions *is* the
// Gröbner-basis reduction chain (see extractor.h).
//
// The engine is templated on the monomial representation (BitRepr<M> in
// bitpoly.h): BackwardRewriter/ShardedRewriter are the packed-tier
// instantiations every production path uses; the Legacy* aliases instantiate
// the pre-packing vector/unordered_map tier for differential tests and the
// --poly-repr=vector ablation. Both instantiations run the identical
// algorithm and merge in the identical fixed order, so their results are
// bit-identical term for term.
//
// Two layers of parallelism sit on top of the serial engine, both bit-exact:
//
//   * Chunked substitution (BackwardRewriter::substitute): when one gate
//     variable occurs in many terms, the affected terms are collected, the
//     x → tail(x) expansion runs shard-locally into thread-private term maps
//     on the pool, and the shards merge back in fixed order. XOR-combining
//     coefficients in F_{2^k} is exact and commutative, so the merged map
//     equals the serial result term for term. This helps pending-heavy chains
//     (flat Montgomery, where most of the time sits in wide substitutions).
//
//   * Seed sharding (ShardedRewriter): substitution is linear in the working
//     polynomial — v → tail(v) is a ring homomorphism on F_{2^k}[x]/J_0, so
//     chain(p ⊕ q) = chain(p) ⊕ chain(q). Splitting the k seed terms across
//     S independent rewriters, running the same RATO sequence in each, and
//     XOR-merging yields the serial polynomial exactly, at every step of the
//     chain. This helps pending-thin chains (XOR-tree multipliers keep each
//     substitutable variable in ≤ 1 term, so chunking has nothing to split).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"
#include "util/exec_control.h"

namespace gfa {

struct RewriteBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Pending-term count above which substitute() fans the tail expansion out
/// across the pool. Below it the dispatch + merge overhead beats the win.
inline constexpr std::size_t kChunkedSubstitutionMin = 128;

/// A gate tail as a flat monomial list with every coefficient implicitly 1.
/// Substitution only ever *iterates* a tail's terms — it never looks one up —
/// and every boolean gate's tail polynomial over F_{2^k} has all-one
/// coefficients, so the packed tier builds tails as plain monomial vectors
/// straight from the gate structure instead of routing them through a
/// hash-map polynomial (one map, several temporaries, and one heap-allocated
/// field element per term, per gate; over half the reduction-chain wall time
/// at k=163 before this existed). The legacy tier keeps building BasicBitPoly
/// tails, preserving the pre-packing baseline the ablation measures against.
template <class M>
struct FlatTail {
  std::vector<M> monos;
};

template <class M>
struct TailOf {
  using type = BasicBitPoly<M>;
};
template <>
struct TailOf<PackedMono> {
  using type = FlatTail<PackedMono>;
};

/// The tail representation the M-tier reduction chain substitutes with.
template <class M>
using GateTail = typename TailOf<M>::type;

/// Builds a gate's tail in the tier's substitution representation. Term
/// *content* is identical across tiers (term order within a tail is not
/// specified — tails only feed commutative XOR-accumulation).
template <class M>
GateTail<M> make_gate_tail(const Gf2k& field, const Netlist::Gate& gate);

/// Rebuilds `tail` in place for `gate`, reusing its vector capacity. The
/// serial chain calls this once per gate; with the spill pool behind wide
/// monomials, steady-state tail construction allocates nothing at all.
void fill_gate_tail(const Gf2k& field, const Netlist::Gate& gate,
                    FlatTail<PackedMono>& tail);

/// A vector with N inline slots that spills to a heap vector past them.
/// Backs the packed tier's occurrence index: in XOR-dominated multiplier
/// chains almost every substitutable variable occurs in one or two working
/// terms, so the per-variable occurrence lists stay malloc-free (the legacy
/// tier keeps plain std::vector lists — the frozen ablation baseline).
template <class T, std::size_t N>
class InlineSmallVec {
 public:
  InlineSmallVec() = default;
  InlineSmallVec(InlineSmallVec&& o) noexcept
      : size_(o.size_), heap_(std::move(o.heap_)) {
    for (std::size_t i = 0; i < (size_ < N ? size_ : N); ++i)
      inline_[i] = std::move(o.inline_[i]);
    o.size_ = 0;
  }
  InlineSmallVec& operator=(InlineSmallVec&& o) noexcept {
    if (this != &o) {
      size_ = o.size_;
      heap_ = std::move(o.heap_);
      for (std::size_t i = 0; i < (size_ < N ? size_ : N); ++i)
        inline_[i] = std::move(o.inline_[i]);
      o.size_ = 0;
    }
    return *this;
  }
  InlineSmallVec(const InlineSmallVec&) = delete;
  InlineSmallVec& operator=(const InlineSmallVec&) = delete;

  void push_back(T v) {
    if (size_ < N) {
      inline_[size_] = std::move(v);
    } else {
      if (size_ == N) {
        // First spill: migrate the inline slots so the storage is contiguous.
        heap_.reserve(2 * N);
        for (T& e : inline_) heap_.push_back(std::move(e));
      }
      heap_.push_back(std::move(v));
    }
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return size_ <= N ? inline_ : heap_.data(); }
  const T* end() const { return begin() + size_; }
  const T& operator[](std::size_t i) const { return begin()[i]; }

 private:
  std::size_t size_ = 0;
  T inline_[N];
  std::vector<T> heap_;
};

/// The occurrence-list container of the M-tier rewriter.
template <class M>
struct OccListOf {
  using type = std::vector<M>;
};
template <>
struct OccListOf<PackedMono> {
  using type = InlineSmallVec<PackedMono, 2>;
};

template <class M>
class BasicBackwardRewriter {
 public:
  using Repr = BitRepr<M>;
  using Poly = BasicBitPoly<M>;
  using TermMap = typename Repr::TermMap;

  /// `substitutable[v]` marks variables that may later be substituted (gate
  /// outputs); only those are indexed. `max_terms` = 0 disables the budget.
  /// A control carrying a ResourceBudget additionally bounds the term map
  /// and occurrence index in bytes (site rewriter.terms); its deadline and
  /// cancel token are polled inside chunked-substitution shard loops.
  BasicBackwardRewriter(const Gf2k& field, std::vector<bool> substitutable,
                        std::size_t max_terms = 0,
                        const ExecControl* control = nullptr)
      : field_(field),
        substitutable_(std::move(substitutable)),
        occurs_(substitutable_.size()),
        max_terms_(max_terms),
        control_(control),
        lease_(budget_of(control), BudgetSite::kRewriterTerms) {}

  void add(M mono, const Gf2k::Elem& coeff) {
    add_impl(std::move(mono), coeff);
  }
  /// Move overload: on a fresh insert the coefficient's heap buffer moves
  /// into the map instead of being copied (one malloc per term at k > 64).
  void add(M mono, Gf2k::Elem&& coeff) {
    add_impl(std::move(mono), std::move(coeff));
  }

 private:
  template <class C>
  void add_impl(M mono, C&& coeff) {
    if (coeff.is_zero()) return;
    GFA_FAULT_POINT("oom:rewriter.add");
    // The packed tier recycles spent coefficient buffers (cancelled terms,
    // unconsumed rvalues) through a small pool: a copy-insert lands in a
    // recycled buffer's capacity instead of a fresh heap block. The legacy
    // tier keeps the baseline allocation behavior.
    constexpr bool kRecycle = std::is_same_v<M, PackedMono>;
    constexpr bool kByMove = !std::is_reference_v<C>;
    // try_emplace leaves `mono` (and `coeff`) intact when the key already
    // exists; it forwards the coefficient only on a fresh insert.
    std::pair<typename TermMap::iterator, bool> r;
    if constexpr (kRecycle && !kByMove) {
      r = terms_.try_emplace(std::move(mono));
      if (r.second) {
        Gf2k::Elem& slot = r.first->second;
        if (!elem_pool_.empty()) {
          slot = std::move(elem_pool_.back());
          elem_pool_.pop_back();
        }
        slot = coeff;
      }
    } else {
      r = terms_.try_emplace(std::move(mono), std::forward<C>(coeff));
    }
    auto [it, inserted] = r;
    if (!inserted) {
      it->second += coeff;
      if constexpr (kRecycle && kByMove) recycle(std::move(coeff));
      if (it->second.is_zero()) {
        spill_bytes_ -= Repr::mono_heap_bytes(it->first);
        if constexpr (kRecycle) recycle(std::move(it->second));
        terms_.erase(it);
      }
      return;  // already indexed
    }
    spill_bytes_ += Repr::mono_heap_bytes(it->first);
    for (VarId v : it->first) {
      if (substitutable_[v]) {
        occurs_[v].push_back(it->first);
        occ_bytes_ += occ_entry_bytes(it->first);
      }
    }
    if (terms_.size() > peak_terms_) peak_terms_ = terms_.size();
    if (max_terms_ && terms_.size() > max_terms_)
      throw RewriteBudgetExceeded("rewriting term budget exceeded");
    // Byte accounting is synced every 64 mutations — often enough to stop a
    // blow-up, rare enough to keep the atomics out of the inner loop.
    if (lease_.active() && (++budget_ops_ & 63u) == 0)
      lease_.set_bytes(Repr::map_bytes(terms_) + spill_bytes_ + occ_bytes_);
  }

 public:
  void add(const Poly& p) {
    for (const auto& [m, c] : p.terms()) add(m, c);
  }

  /// Replaces every occurrence of variable v by `tail` (a polynomial over
  /// variables that will be substituted after v, or never). Fans out across
  /// the pool when enough terms are affected (see header comment); the
  /// result is bit-identical either way. Accepts the tier's flat tail form
  /// (what the chain feeds it) or a full polynomial (tests, baselines).
  void substitute(VarId v, const Poly& tail) { substitute_impl(v, tail); }
  void substitute(VarId v, const FlatTail<M>& tail) {
    substitute_impl(v, tail);
  }

  std::size_t num_terms() const { return terms_.size(); }
  const TermMap& terms() const { return terms_; }

  /// Destructively hands the term map over (the rewriter is spent after);
  /// used by ShardedRewriter's final merge to avoid copying every monomial.
  TermMap take_terms() { return std::move(terms_); }

  /// Largest term-map size seen so far (sampled after every insertion).
  std::size_t peak_terms() const { return peak_terms_; }

  /// Registered (possibly stale) occurrence-index entries for v.
  std::size_t occurrences(VarId v) const { return occurs_[v].size(); }

  /// Gate-lookahead prefetch hooks for the serial chain (run_segment): a
  /// substitution typically affects a single term, so latency can only be
  /// hidden by warming the *next* gates' state while the current one
  /// expands. Two levels, matching the dependency chain: the occurrence
  /// list line first (its inline slots hold the pending monomials), then —
  /// one gate later, once that line is resident — the term-map slots those
  /// monomials probe. Advisory only; no-ops on the legacy tier, whose
  /// baseline behavior stays frozen for the ablation.
  void prefetch_occurrence_list(VarId v) const {
    if constexpr (std::is_same_v<M, PackedMono>)
      __builtin_prefetch(&occurs_[v], 0, 1);
  }
  void prefetch_pending(VarId v) const {
    if constexpr (std::is_same_v<M, PackedMono>) {
      const auto& pending = occurs_[v];
      std::size_t n = pending.size();
      if (n > 4) n = 4;  // a few lines of lead is all the loop can use
      for (std::size_t i = 0; i < n; ++i) terms_.prefetch(pending[i]);
    }
  }

 private:
  /// One affected term, detached from the map: the monomial minus v, plus
  /// its coefficient.
  struct Affected {
    M rest;
    Gf2k::Elem coeff;
  };

  template <class TailT>
  void substitute_impl(VarId v, const TailT& tail);

  template <class TailT>
  void expand_chunked(const std::vector<Affected>& work, const TailT& tail,
                      unsigned width);

  /// Heap footprint of one occurrence-index entry (vector slot + the copied
  /// monomial). The packed tier's inline monomials cost the slot alone and
  /// spilled ones add their arena buffer; the legacy tier keeps its original
  /// node-plus-id-buffer estimate.
  static std::size_t occ_entry_bytes(const M& m) {
    if constexpr (std::is_same_v<M, PackedMono>)
      return sizeof(M) + Repr::mono_heap_bytes(m);
    else
      return 32 + sizeof(VarId) * m.size();
  }

  /// Banks a spent coefficient's heap buffer for reuse (bounded pool).
  void recycle(Gf2k::Elem&& e) {
    if (elem_pool_.size() < kElemPoolCap) elem_pool_.push_back(std::move(e));
  }
  static constexpr std::size_t kElemPoolCap = 64;

  const Gf2k& field_;
  std::vector<bool> substitutable_;
  TermMap terms_;
  std::vector<typename OccListOf<M>::type> occurs_;
  std::size_t max_terms_;
  const ExecControl* control_;
  std::size_t occ_bytes_ = 0;    // current occurrence-index footprint
  std::size_t spill_bytes_ = 0;  // arena bytes owned by keys in terms_
  std::size_t budget_ops_ = 0;   // mutation counter for the sync cadence
  std::size_t peak_terms_ = 0;   // high-water mark of terms_.size()
  std::vector<Gf2k::Elem> elem_pool_;  // recycled coefficient buffers
  BudgetLease lease_;            // releases everything on destruction
};

using BackwardRewriter = BasicBackwardRewriter<BitMono>;
using LegacyBackwardRewriter = BasicBackwardRewriter<LegacyBitMono>;

/// One RATO reduction chain run as S independent sub-chains over a partition
/// of the seed polynomial (see the header comment's linearity argument).
/// Shards share nothing mutable — gate tails are built once per segment and
/// read concurrently — and only meet at merge barriers, where the XOR-merge
/// (fixed shard order) reconstructs the exact serial intermediate
/// polynomial. Checkpoints therefore snapshot only at barriers.
///
/// Budgets: each shard holds its own BudgetLease against rewriter.terms and
/// its own max_terms cap; on top, the summed term count is checked at every
/// barrier, so a run that would have tripped serially still trips (possibly
/// a segment later — budgets bound resources, they are not part of the
/// canonical answer).
template <class M>
class BasicShardedRewriter {
 public:
  using Shard = BasicBackwardRewriter<M>;
  using TermMap = typename BitRepr<M>::TermMap;

  BasicShardedRewriter(const Gf2k& field, std::vector<bool> substitutable,
                       unsigned shards, std::size_t max_terms = 0,
                       const ExecControl* control = nullptr);

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Distributes one seed term round-robin. Call in a fixed order (the
  /// partition is deterministic given the call sequence; *any* partition
  /// merges to the same polynomial).
  void seed(M mono, const Gf2k::Elem& coeff);

  /// Substitutes gates[from, to) — in RATO order — into every shard,
  /// concurrently. Returns at a merge barrier: all shards have applied
  /// exactly the first `to` substitutions of the chain.
  void run_segment(const Netlist& netlist, const std::vector<NetId>& gates,
                   std::size_t from, std::size_t to);

  /// Summed live terms across shards (≥ the merged size; XOR-cancellation
  /// between shards only resolves at a merge).
  std::size_t num_terms() const;

  /// Summed per-shard high-water marks: an upper bound on the largest
  /// simultaneous footprint, and exactly the serial peak when S = 1.
  std::size_t peak_terms() const;

  /// Non-destructive XOR-merge (fixed shard order) — the exact serial
  /// intermediate polynomial at the current step; checkpoint snapshots.
  TermMap merged() const;

  /// Destructive final merge; the rewriter is spent afterwards.
  TermMap take_merged();

 private:
  void check_total_terms() const;

  const Gf2k& field_;
  std::size_t max_terms_;
  const ExecControl* control_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_seed_ = 0;
};

using ShardedRewriter = BasicShardedRewriter<BitMono>;
using LegacyShardedRewriter = BasicShardedRewriter<LegacyBitMono>;

extern template class BasicBackwardRewriter<BitMono>;
extern template class BasicBackwardRewriter<LegacyBitMono>;
extern template class BasicShardedRewriter<BitMono>;
extern template class BasicShardedRewriter<LegacyBitMono>;

/// The tail polynomial of a gate over net-id variables (multilinear form of
/// gate_tail_poly), in either monomial tier.
template <class M>
BasicBitPoly<M> gate_tail_bitpoly_t(const Gf2k& field,
                                    const Netlist::Gate& gate);

inline BitPoly gate_tail_bitpoly(const Gf2k& field,
                                 const Netlist::Gate& gate) {
  return gate_tail_bitpoly_t<BitMono>(field, gate);
}

}  // namespace gfa
