#pragma once
// Backward-rewriting engine over the multilinear BitPoly representation.
//
// Shared by the abstraction extractor and the ideal-membership baseline: a
// polynomial over net-indexed bit variables plus an occurrence index, so that
// substituting a gate-output variable by its tail touches only the terms that
// actually contain it. Under RATO this sequence of substitutions *is* the
// Gröbner-basis reduction chain (see extractor.h).

#include <stdexcept>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"
#include "util/exec_control.h"

namespace gfa {

struct RewriteBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class BackwardRewriter {
 public:
  /// `substitutable[v]` marks variables that may later be substituted (gate
  /// outputs); only those are indexed. `max_terms` = 0 disables the budget.
  /// A control carrying a ResourceBudget additionally bounds the term map
  /// and occurrence index in bytes (site rewriter.terms).
  BackwardRewriter(const Gf2k& field, std::vector<bool> substitutable,
                   std::size_t max_terms = 0,
                   const ExecControl* control = nullptr)
      : field_(field),
        substitutable_(std::move(substitutable)),
        occurs_(substitutable_.size()),
        max_terms_(max_terms),
        lease_(budget_of(control), BudgetSite::kRewriterTerms) {}

  void add(BitMono mono, const Gf2k::Elem& coeff) {
    if (coeff.is_zero()) return;
    GFA_FAULT_POINT("oom:rewriter.add");
    // try_emplace leaves `mono` intact when the key already exists.
    auto [it, inserted] = terms_.try_emplace(std::move(mono), coeff);
    if (!inserted) {
      it->second += coeff;
      if (it->second.is_zero()) terms_.erase(it);
      return;  // already indexed
    }
    for (VarId v : it->first) {
      if (substitutable_[v]) {
        occurs_[v].push_back(it->first);
        occ_bytes_ += occ_entry_bytes(it->first);
      }
    }
    if (max_terms_ && terms_.size() > max_terms_)
      throw RewriteBudgetExceeded("rewriting term budget exceeded");
    // Byte accounting is synced every 64 mutations — often enough to stop a
    // blow-up, rare enough to keep the atomics out of the inner loop.
    if (lease_.active() && (++budget_ops_ & 63u) == 0)
      lease_.set_bytes(terms_.size() * kRewriterTermBytes + occ_bytes_);
  }

  void add(const BitPoly& p) {
    for (const auto& [m, c] : p.terms()) add(m, c);
  }

  /// Replaces every occurrence of variable v by `tail` (a polynomial over
  /// variables that will be substituted after v, or never).
  void substitute(VarId v, const BitPoly& tail) {
    std::vector<BitMono> pending = std::move(occurs_[v]);
    occurs_[v].clear();
    for (const BitMono& dead : pending) {
      const std::size_t b = occ_entry_bytes(dead);
      occ_bytes_ = occ_bytes_ > b ? occ_bytes_ - b : 0;
    }
    for (BitMono& mono : pending) {
      auto it = terms_.find(mono);
      if (it == terms_.end()) continue;  // cancelled since registration
      const Gf2k::Elem coeff = it->second;
      terms_.erase(it);
      BitMono rest;
      rest.reserve(mono.size() - 1);
      for (VarId x : mono)
        if (x != v) rest.push_back(x);
      for (const auto& [tmono, tcoeff] : tail.terms()) {
        // Gate tails almost always carry coefficient 1 (AND/XOR/NOT terms);
        // skip the field multiply on that fast path.
        add(bitmono_mul(rest, tmono),
            tcoeff.is_one() ? coeff : field_.mul(coeff, tcoeff));
      }
    }
  }

  std::size_t num_terms() const { return terms_.size(); }
  const BitPoly::TermMap& terms() const { return terms_; }

 private:
  /// Heap footprint of one occurrence-index entry (vector slot + the copied
  /// monomial's buffer).
  static std::size_t occ_entry_bytes(const BitMono& m) {
    return 32 + sizeof(VarId) * m.size();
  }

  const Gf2k& field_;
  std::vector<bool> substitutable_;
  BitPoly::TermMap terms_;
  std::vector<std::vector<BitMono>> occurs_;
  std::size_t max_terms_;
  std::size_t occ_bytes_ = 0;    // current occurrence-index footprint
  std::size_t budget_ops_ = 0;   // mutation counter for the sync cadence
  BudgetLease lease_;            // releases everything on destruction
};

/// The tail polynomial of a gate over net-id variables (multilinear form of
/// gate_tail_poly).
BitPoly gate_tail_bitpoly(const Gf2k& field, const Netlist::Gate& gate);

}  // namespace gfa
