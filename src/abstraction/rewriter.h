#pragma once
// Backward-rewriting engine over the multilinear BitPoly representation.
//
// Shared by the abstraction extractor and the ideal-membership baseline: a
// polynomial over net-indexed bit variables plus an occurrence index, so that
// substituting a gate-output variable by its tail touches only the terms that
// actually contain it. Under RATO this sequence of substitutions *is* the
// Gröbner-basis reduction chain (see extractor.h).

#include <stdexcept>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"

namespace gfa {

struct RewriteBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class BackwardRewriter {
 public:
  /// `substitutable[v]` marks variables that may later be substituted (gate
  /// outputs); only those are indexed. `max_terms` = 0 disables the budget.
  BackwardRewriter(const Gf2k& field, std::vector<bool> substitutable,
                   std::size_t max_terms = 0)
      : field_(field),
        substitutable_(std::move(substitutable)),
        occurs_(substitutable_.size()),
        max_terms_(max_terms) {}

  void add(BitMono mono, const Gf2k::Elem& coeff) {
    if (coeff.is_zero()) return;
    // try_emplace leaves `mono` intact when the key already exists.
    auto [it, inserted] = terms_.try_emplace(std::move(mono), coeff);
    if (!inserted) {
      it->second += coeff;
      if (it->second.is_zero()) terms_.erase(it);
      return;  // already indexed
    }
    for (VarId v : it->first) {
      if (substitutable_[v]) occurs_[v].push_back(it->first);
    }
    if (max_terms_ && terms_.size() > max_terms_)
      throw RewriteBudgetExceeded("rewriting term budget exceeded");
  }

  void add(const BitPoly& p) {
    for (const auto& [m, c] : p.terms()) add(m, c);
  }

  /// Replaces every occurrence of variable v by `tail` (a polynomial over
  /// variables that will be substituted after v, or never).
  void substitute(VarId v, const BitPoly& tail) {
    std::vector<BitMono> pending = std::move(occurs_[v]);
    occurs_[v].clear();
    for (BitMono& mono : pending) {
      auto it = terms_.find(mono);
      if (it == terms_.end()) continue;  // cancelled since registration
      const Gf2k::Elem coeff = it->second;
      terms_.erase(it);
      BitMono rest;
      rest.reserve(mono.size() - 1);
      for (VarId x : mono)
        if (x != v) rest.push_back(x);
      for (const auto& [tmono, tcoeff] : tail.terms()) {
        // Gate tails almost always carry coefficient 1 (AND/XOR/NOT terms);
        // skip the field multiply on that fast path.
        add(bitmono_mul(rest, tmono),
            tcoeff.is_one() ? coeff : field_.mul(coeff, tcoeff));
      }
    }
  }

  std::size_t num_terms() const { return terms_.size(); }
  const BitPoly::TermMap& terms() const { return terms_; }

 private:
  const Gf2k& field_;
  std::vector<bool> substitutable_;
  BitPoly::TermMap terms_;
  std::vector<std::vector<BitMono>> occurs_;
  std::size_t max_terms_;
};

/// The tail polynomial of a gate over net-id variables (multilinear form of
/// gate_tail_poly).
BitPoly gate_tail_bitpoly(const Gf2k& field, const Netlist::Gate& gate);

}  // namespace gfa
