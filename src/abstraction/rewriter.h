#pragma once
// Backward-rewriting engine over the multilinear BitPoly representation.
//
// Shared by the abstraction extractor and the ideal-membership baseline: a
// polynomial over net-indexed bit variables plus an occurrence index, so that
// substituting a gate-output variable by its tail touches only the terms that
// actually contain it. Under RATO this sequence of substitutions *is* the
// Gröbner-basis reduction chain (see extractor.h).
//
// Two layers of parallelism sit on top of the serial engine, both bit-exact:
//
//   * Chunked substitution (BackwardRewriter::substitute): when one gate
//     variable occurs in many terms, the affected terms are collected, the
//     x → tail(x) expansion runs shard-locally into thread-private term maps
//     on the pool, and the shards merge back in fixed order. XOR-combining
//     coefficients in F_{2^k} is exact and commutative, so the merged map
//     equals the serial result term for term. This helps pending-heavy chains
//     (flat Montgomery, where most of the time sits in wide substitutions).
//
//   * Seed sharding (ShardedRewriter): substitution is linear in the working
//     polynomial — v → tail(v) is a ring homomorphism on F_{2^k}[x]/J_0, so
//     chain(p ⊕ q) = chain(p) ⊕ chain(q). Splitting the k seed terms across
//     S independent rewriters, running the same RATO sequence in each, and
//     XOR-merging yields the serial polynomial exactly, at every step of the
//     chain. This helps pending-thin chains (XOR-tree multipliers keep each
//     substitutable variable in ≤ 1 term, so chunking has nothing to split).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"
#include "util/exec_control.h"

namespace gfa {

struct RewriteBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Pending-term count above which substitute() fans the tail expansion out
/// across the pool. Below it the dispatch + merge overhead beats the win.
inline constexpr std::size_t kChunkedSubstitutionMin = 128;

class BackwardRewriter {
 public:
  /// `substitutable[v]` marks variables that may later be substituted (gate
  /// outputs); only those are indexed. `max_terms` = 0 disables the budget.
  /// A control carrying a ResourceBudget additionally bounds the term map
  /// and occurrence index in bytes (site rewriter.terms); its deadline and
  /// cancel token are polled inside chunked-substitution shard loops.
  BackwardRewriter(const Gf2k& field, std::vector<bool> substitutable,
                   std::size_t max_terms = 0,
                   const ExecControl* control = nullptr)
      : field_(field),
        substitutable_(std::move(substitutable)),
        occurs_(substitutable_.size()),
        max_terms_(max_terms),
        control_(control),
        lease_(budget_of(control), BudgetSite::kRewriterTerms) {}

  void add(BitMono mono, const Gf2k::Elem& coeff) {
    if (coeff.is_zero()) return;
    GFA_FAULT_POINT("oom:rewriter.add");
    // try_emplace leaves `mono` intact when the key already exists.
    auto [it, inserted] = terms_.try_emplace(std::move(mono), coeff);
    if (!inserted) {
      it->second += coeff;
      if (it->second.is_zero()) terms_.erase(it);
      return;  // already indexed
    }
    for (VarId v : it->first) {
      if (substitutable_[v]) {
        occurs_[v].push_back(it->first);
        occ_bytes_ += occ_entry_bytes(it->first);
      }
    }
    if (terms_.size() > peak_terms_) peak_terms_ = terms_.size();
    if (max_terms_ && terms_.size() > max_terms_)
      throw RewriteBudgetExceeded("rewriting term budget exceeded");
    // Byte accounting is synced every 64 mutations — often enough to stop a
    // blow-up, rare enough to keep the atomics out of the inner loop.
    if (lease_.active() && (++budget_ops_ & 63u) == 0)
      lease_.set_bytes(terms_.size() * kRewriterTermBytes + occ_bytes_);
  }

  void add(const BitPoly& p) {
    for (const auto& [m, c] : p.terms()) add(m, c);
  }

  /// Replaces every occurrence of variable v by `tail` (a polynomial over
  /// variables that will be substituted after v, or never). Fans out across
  /// the pool when enough terms are affected (see header comment); the
  /// result is bit-identical either way.
  void substitute(VarId v, const BitPoly& tail);

  std::size_t num_terms() const { return terms_.size(); }
  const BitPoly::TermMap& terms() const { return terms_; }

  /// Destructively hands the term map over (the rewriter is spent after);
  /// used by ShardedRewriter's final merge to avoid copying every monomial.
  BitPoly::TermMap take_terms() { return std::move(terms_); }

  /// Largest term-map size seen so far (sampled after every insertion).
  std::size_t peak_terms() const { return peak_terms_; }

  /// Registered (possibly stale) occurrence-index entries for v.
  std::size_t occurrences(VarId v) const { return occurs_[v].size(); }

 private:
  /// One affected term, detached from the map: the monomial minus v, plus
  /// its coefficient.
  struct Affected {
    BitMono rest;
    Gf2k::Elem coeff;
  };

  void expand_chunked(const std::vector<Affected>& work, const BitPoly& tail,
                      unsigned width);

  /// Heap footprint of one occurrence-index entry (vector slot + the copied
  /// monomial's buffer).
  static std::size_t occ_entry_bytes(const BitMono& m) {
    return 32 + sizeof(VarId) * m.size();
  }

  const Gf2k& field_;
  std::vector<bool> substitutable_;
  BitPoly::TermMap terms_;
  std::vector<std::vector<BitMono>> occurs_;
  std::size_t max_terms_;
  const ExecControl* control_;
  std::size_t occ_bytes_ = 0;    // current occurrence-index footprint
  std::size_t budget_ops_ = 0;   // mutation counter for the sync cadence
  std::size_t peak_terms_ = 0;   // high-water mark of terms_.size()
  BudgetLease lease_;            // releases everything on destruction
};

/// One RATO reduction chain run as S independent sub-chains over a partition
/// of the seed polynomial (see the header comment's linearity argument).
/// Shards share nothing mutable — gate tails are built once per segment and
/// read concurrently — and only meet at merge barriers, where the XOR-merge
/// (fixed shard order) reconstructs the exact serial intermediate
/// polynomial. Checkpoints therefore snapshot only at barriers.
///
/// Budgets: each shard holds its own BudgetLease against rewriter.terms and
/// its own max_terms cap; on top, the summed term count is checked at every
/// barrier, so a run that would have tripped serially still trips (possibly
/// a segment later — budgets bound resources, they are not part of the
/// canonical answer).
class ShardedRewriter {
 public:
  ShardedRewriter(const Gf2k& field, std::vector<bool> substitutable,
                  unsigned shards, std::size_t max_terms = 0,
                  const ExecControl* control = nullptr);

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Distributes one seed term round-robin. Call in a fixed order (the
  /// partition is deterministic given the call sequence; *any* partition
  /// merges to the same polynomial).
  void seed(BitMono mono, const Gf2k::Elem& coeff);

  /// Substitutes gates[from, to) — in RATO order — into every shard,
  /// concurrently. Returns at a merge barrier: all shards have applied
  /// exactly the first `to` substitutions of the chain.
  void run_segment(const Netlist& netlist, const std::vector<NetId>& gates,
                   std::size_t from, std::size_t to);

  /// Summed live terms across shards (≥ the merged size; XOR-cancellation
  /// between shards only resolves at a merge).
  std::size_t num_terms() const;

  /// Summed per-shard high-water marks: an upper bound on the largest
  /// simultaneous footprint, and exactly the serial peak when S = 1.
  std::size_t peak_terms() const;

  /// Non-destructive XOR-merge (fixed shard order) — the exact serial
  /// intermediate polynomial at the current step; checkpoint snapshots.
  BitPoly::TermMap merged() const;

  /// Destructive final merge; the rewriter is spent afterwards.
  BitPoly::TermMap take_merged();

 private:
  void check_total_terms() const;

  const Gf2k& field_;
  std::size_t max_terms_;
  const ExecControl* control_;
  std::vector<std::unique_ptr<BackwardRewriter>> shards_;
  std::size_t next_seed_ = 0;
};

/// The tail polynomial of a gate over net-id variables (multilinear form of
/// gate_tail_poly).
BitPoly gate_tail_bitpoly(const Gf2k& field, const Netlist::Gate& gate);

}  // namespace gfa
