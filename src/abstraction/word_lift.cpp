#include "abstraction/word_lift.h"

#include <cassert>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa {

namespace {

/// Inverts a k×k matrix over F_{2^k} by Gauss–Jordan elimination. The row
/// eliminations per pivot column are independent and run on the pool.
std::vector<std::vector<Gf2k::Elem>> invert(
    const Gf2k& field, std::vector<std::vector<Gf2k::Elem>> m,
    const ExecControl* control) {
  const std::size_t k = m.size();
  std::vector<std::vector<Gf2k::Elem>> inv(k, std::vector<Gf2k::Elem>(k));
  for (std::size_t i = 0; i < k; ++i) inv[i][i] = field.one();

  for (std::size_t col = 0; col < k; ++col) {
    throw_if_stopped(control);
    std::size_t pivot = col;
    while (pivot < k && m[pivot][col].is_zero()) ++pivot;
    if (pivot == k) throw std::logic_error("basis-change matrix is singular");
    std::swap(m[pivot], m[col]);
    std::swap(inv[pivot], inv[col]);
    const Gf2k::Elem s = field.inv(m[col][col]);
    for (std::size_t j = 0; j < k; ++j) {
      m[col][j] = field.mul(m[col][j], s);
      inv[col][j] = field.mul(inv[col][j], s);
    }
    parallel_for(k, [&](std::size_t row) {
      if (row == col || m[row][col].is_zero()) return;
      const Gf2k::Elem f = m[row][col];
      for (std::size_t j = 0; j < k; ++j) {
        m[row][j] += field.mul(f, m[col][j]);    // char 2: subtract == add
        inv[row][j] += field.mul(f, inv[col][j]);
      }
    }, control);
  }
  return inv;
}

}  // namespace

WordLift::WordLift(const Gf2k* field, const std::vector<Elem>* basis,
                   const ExecControl* control)
    : field_(field) {
  const obs::TraceSpan span("frobenius_basis_change", "abstraction");
  const unsigned k = field_->k();
  if (basis != nullptr) {
    assert(basis->size() == k && "word basis must have k elements");
    basis_ = *basis;
  } else {
    basis_.reserve(k);
    for (unsigned i = 0; i < k; ++i)
      basis_.push_back(field_->alpha_pow(std::uint64_t{i}));
  }
  // M[j][i] = basis[i]^{2^j}, built column-wise by iterated squaring —
  // k² field squarings.
  std::vector<std::vector<Elem>> m(k, std::vector<Elem>(k));
  for (unsigned i = 0; i < k; ++i) {
    Elem cur = field_->reduce(basis_[i]);
    for (unsigned j = 0; j < k; ++j) {
      m[j][i] = cur;
      cur = field_->square(cur);
    }
  }
  // a = C · (A^{2^j})_j needs C = M^{-1}, with rows indexed by bit position i.
  c_ = invert(*field_, std::move(m), control);
}

MPoly WordLift::lift(const BitPoly& r, const std::vector<WordBinding>& words,
                     const VarPool& pool, const ExecControl* control) const {
  for (const WordBinding& w : words)
    assert(w.bit_vars.size() == field_->k() && "word width must equal k");
  if (r.max_monomial_size() <= 2) return lift_bilinear(r, words, pool, control);
  return lift_general(r, words, pool, control);
}

namespace {

struct BitLocation {
  std::size_t word_index;
  unsigned bit_index;
};

std::unordered_map<VarId, BitLocation> index_bits(
    const std::vector<WordLift::WordBinding>& words) {
  std::unordered_map<VarId, BitLocation> loc;
  for (std::size_t w = 0; w < words.size(); ++w)
    for (unsigned i = 0; i < words[w].bit_vars.size(); ++i)
      loc.emplace(words[w].bit_vars[i], BitLocation{w, i});
  return loc;
}

}  // namespace

MPoly WordLift::lift_bilinear(const BitPoly& r,
                              const std::vector<WordBinding>& words,
                              const VarPool& pool,
                              const ExecControl* control) const {
  const unsigned k = field_->k();
  const auto loc = index_bits(words);

  Elem constant = field_->zero();
  // Linear part per word; quadratic part per (word, word) pair with the
  // convention word_index1 <= word_index2 (and bit order as in the monomial).
  std::map<std::size_t, std::vector<Elem>> linear;
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::vector<Elem>>> quad;

  for (const auto& [m, c] : r.terms()) {
    if (m.empty()) {
      constant += c;
    } else if (m.size() == 1) {
      const auto it = loc.find(m[0]);
      if (it == loc.end()) throw std::logic_error("unbound bit variable in remainder");
      auto& vec = linear.try_emplace(it->second.word_index,
                                     std::vector<Elem>(k)).first->second;
      vec[it->second.bit_index] += c;
    } else {
      const auto it0 = loc.find(m[0]);
      const auto it1 = loc.find(m[1]);
      if (it0 == loc.end() || it1 == loc.end())
        throw std::logic_error("unbound bit variable in remainder");
      BitLocation l0 = it0->second, l1 = it1->second;
      if (l0.word_index > l1.word_index) std::swap(l0, l1);
      auto& q = quad.try_emplace(std::make_pair(l0.word_index, l1.word_index),
                                 std::vector<std::vector<Elem>>(
                                     k, std::vector<Elem>(k)))
                    .first->second;
      q[l0.bit_index][l1.bit_index] += c;
    }
  }

  MPoly out(field_);
  out.add_term(Monomial(), constant);

  // Linear: Σ_i L[i]·w_i = Σ_j (Σ_i L[i]·C[i][j]) · W^{2^j}. The k output
  // coefficients are independent (k² multiplies each word), so they run on
  // the pool; terms merge sequentially in j order afterwards.
  for (const auto& [w, vec] : linear) {
    const VarId wv = words[w].word_var;
    std::vector<Elem> coeffs(k);
    parallel_for(k, [&](std::size_t j) {
      Elem s = field_->zero();
      for (unsigned i = 0; i < k; ++i) {
        if (!vec[i].is_zero() && !c_[i][j].is_zero())
          s += field_->mul(vec[i], c_[i][j]);
      }
      coeffs[j] = s;
    }, control);
    for (unsigned j = 0; j < k; ++j)
      out.add_term(Monomial(wv, BigUint::pow2(j)), coeffs[j]);
  }

  // Quadratic: Σ Q[i][l]·u_i·v_l = Σ_{s,t} (Cᵀ·Q·C)[s][t] · U^{2^s}·V^{2^t}.
  // Both transforms are O(k³) field multiplies — ~1.9·10⁸ at k = 571 — and
  // embarrassingly parallel by row, so they run on the pool; each task only
  // touches its own output row and the results are merged sequentially.
  for (const auto& [pair, q] : quad) {
    throw_if_stopped(control);
    const VarId uv = words[pair.first].word_var;
    const VarId vv = words[pair.second].word_var;
    // E = Q·C, then D = Cᵀ·E.
    std::vector<std::vector<Elem>> e(k, std::vector<Elem>(k));
    parallel_for(k, [&](std::size_t i) {
      for (unsigned l = 0; l < k; ++l) {
        if (q[i][l].is_zero()) continue;
        for (unsigned t = 0; t < k; ++t)
          if (!c_[l][t].is_zero()) e[i][t] += field_->mul(q[i][l], c_[l][t]);
      }
    }, control);
    std::vector<std::vector<std::pair<Monomial, Elem>>> rows(k);
    parallel_for(k, [&](std::size_t s) {
      for (unsigned t = 0; t < k; ++t) {
        Elem d = field_->zero();
        for (unsigned i = 0; i < k; ++i)
          if (!c_[i][s].is_zero() && !e[i][t].is_zero())
            d += field_->mul(c_[i][s], e[i][t]);
        if (d.is_zero()) continue;
        Monomial mono =
            uv == vv
                ? Monomial(uv, field_->reduce_exponent(BigUint::pow2(s) +
                                                       BigUint::pow2(t)))
                : Monomial::from_pairs({{uv, BigUint::pow2(static_cast<unsigned>(s))},
                                        {vv, BigUint::pow2(t)}});
        rows[s].emplace_back(std::move(mono), std::move(d));
      }
    }, control);
    for (const auto& row : rows)
      for (const auto& [mono, d] : row) out.add_term(mono, d);
  }
  return out.normalized_vanishing(pool);
}

MPoly WordLift::lift_general(const BitPoly& r,
                             const std::vector<WordBinding>& words,
                             const VarPool& pool,
                             const ExecControl* control) const {
  const unsigned k = field_->k();
  const auto loc = index_bits(words);

  // Per-bit expansion polynomials w_i = Σ_j C[i][j]·W^{2^j}, built up front
  // (serially — k terms per distinct bit) so the expensive per-term products
  // below can share them read-only across pool threads.
  std::unordered_map<VarId, MPoly> expansion;
  for (const auto& [m, c] : r.terms()) {
    for (VarId v : m) {
      if (expansion.count(v)) continue;
      const auto lit = loc.find(v);
      if (lit == loc.end())
        throw std::logic_error("unbound bit variable in remainder");
      MPoly p(field_);
      const VarId wv = words[lit->second.word_index].word_var;
      for (unsigned j = 0; j < k; ++j) {
        const Elem& coeff = c_[lit->second.bit_index][j];
        if (!coeff.is_zero()) p.add_term(Monomial(wv, BigUint::pow2(j)), coeff);
      }
      expansion.emplace(v, std::move(p));
    }
  }

  // Each remainder term expands independently (a product of its bits'
  // expansion polynomials); terms are strided over width-many chunks, each
  // chunk accumulating into a private MPoly, merged in fixed chunk order.
  // Coefficient addition in F_{2^k} is exact, so the result matches the
  // serial accumulation bit for bit.
  std::vector<const BitPoly::TermMap::value_type*> terms;
  terms.reserve(r.terms().size());
  for (const auto& term : r.terms()) terms.push_back(&term);
  const std::size_t chunks = std::min<std::size_t>(
      std::max<unsigned>(parallel_available_width(), 1), terms.size());
  std::vector<MPoly> partial(chunks, MPoly(field_));
  parallel_for(chunks, [&](std::size_t chunk) {
    MPoly acc_sum(field_);
    for (std::size_t i = chunk; i < terms.size(); i += chunks) {
      throw_if_stopped(control);
      const auto& [m, c] = *terms[i];
      MPoly acc = MPoly::constant(field_, c);
      for (VarId v : m)
        acc = (acc * expansion.at(v)).normalized_vanishing(pool);
      acc_sum += acc;
    }
    partial[chunk] = std::move(acc_sum);
  }, control);
  MPoly out(field_);
  for (MPoly& p : partial) out += p;
  return out.normalized_vanishing(pool);
}

}  // namespace gfa
