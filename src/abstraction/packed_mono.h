#pragma once
// Packed multilinear monomials (the PolyBoRi lesson, arXiv:0801.1177):
// Boolean-ring monomials deserve a specialized layout, not a generic
// std::vector key. A PackedMono is a strictly-increasing VarId set stored
// inline in two 64-bit words whenever it fits — which is essentially always
// for gate-level reduction chains, where monomials are the 1- and 2-variable
// partial products of a multiplier — and spilled to a pooled heap buffer for
// the rare wide monomial (deep OR cones) or huge net id.
//
// Inline layout (little-endian bit offsets within the two words):
//
//   w0  [ 0.. 3)  count 0..6 (the value 7 tags the spilled form)
//       [ 3.. 4)  reserved, zero
//       [ 4..24)  id[0]     [24..44) id[1]     [44..64) id[2]
//   w1  [ 0..20)  id[3]     [20..40) id[4]     [40..60) id[5]
//       [60..64)  reserved, zero
//
// Spilled layout: w0 = (count << 3) | 7, w1 = pointer to a VarId buffer from
// the thread-local spill pool (see packed_mono_pool_stats). A monomial spills
// iff it has more than 6 variables or any id >= 2^20; for a given id set the
// choice is therefore *canonical* — equality and hashing never compare across
// forms, and the inline fast paths stay branch-light.
//
// The representation is the unit of the "packed" tier in the phase-aware
// facade (bitpoly.h): the circuit-variable phase (rewriter chain, extractor,
// F4, hierarchy) runs entirely on PackedMono keys; the word-level
// BigUint-exponent endgame (word_lift, equivalence) stays on the generic
// MPoly ring.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <ostream>
#include <vector>

#include "poly/varpool.h"

namespace gfa {

namespace detail {

/// Thread-local size-classed free lists backing spilled monomials. Buffers
/// are recycled within the freeing thread (spills that migrate across shard
/// merges are simply returned to the merger's pool); each class caches a
/// bounded number of buffers and falls back to operator new beyond that.
VarId* spill_alloc(std::size_t n);
void spill_free(VarId* p, std::size_t n) noexcept;
/// Bytes the pool accounts for an n-id spill buffer (its size class, not n).
std::size_t spill_capacity_bytes(std::size_t n) noexcept;

}  // namespace detail

/// Allocation/recycle counters for the spill pool, summed across threads.
/// live_bytes is the current footprint of outstanding spill buffers — the
/// number the rewriter folds into its rewriter.terms budget lease.
struct SpillPoolStats {
  std::uint64_t allocs = 0;     // spill buffers handed out
  std::uint64_t pool_hits = 0;  // ... of which came from a free list
  std::uint64_t frees = 0;      // buffers returned
  std::uint64_t live_bytes = 0; // outstanding buffer bytes right now
};
SpillPoolStats packed_mono_pool_stats();

class PackedMono {
 public:
  static constexpr std::size_t kMaxInline = 6;
  static constexpr VarId kMaxInlineId = (VarId{1} << 20) - 1;

  PackedMono() = default;

  /// Sorts and deduplicates, so brace lists read like variable sets.
  PackedMono(std::initializer_list<VarId> ids);

  /// `ids[0..n)` must be strictly increasing (the class invariant). The
  /// inline-form path is header-inline — it is the single hottest
  /// constructor in the reduction chain (every tail term, every stripped
  /// monomial) and compiles to a handful of shifts.
  static PackedMono from_sorted(const VarId* ids, std::size_t n) {
    if (n <= kMaxInline && (n == 0 || ids[n - 1] <= kMaxInlineId)) {
      PackedMono m;
      m.w0_ = static_cast<std::uint64_t>(n);
      for (std::size_t i = 0; i < n && i < 3; ++i)
        m.w0_ |= static_cast<std::uint64_t>(ids[i]) << (4 + 20 * i);
      for (std::size_t i = 3; i < n; ++i)
        m.w1_ |= static_cast<std::uint64_t>(ids[i]) << (20 * (i - 3));
      return m;
    }
    return spill_from(ids, n);
  }

  PackedMono(const PackedMono& o) { copy_from(o); }
  PackedMono(PackedMono&& o) noexcept : w0_(o.w0_), w1_(o.w1_) {
    o.w0_ = 0;
    o.w1_ = 0;
  }
  PackedMono& operator=(const PackedMono& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  PackedMono& operator=(PackedMono&& o) noexcept {
    if (this != &o) {
      destroy();
      w0_ = o.w0_;
      w1_ = o.w1_;
      o.w0_ = 0;
      o.w1_ = 0;
    }
    return *this;
  }
  ~PackedMono() { destroy(); }

  bool spilled() const { return (w0_ & 7u) == 7u; }
  std::size_t size() const {
    return spilled() ? static_cast<std::size_t>(w0_ >> 3)
                     : static_cast<std::size_t>(w0_ & 7u);
  }
  bool empty() const { return w0_ == 0; }

  VarId operator[](std::size_t i) const {
    return spilled() ? spill_ptr()[i] : inline_id(i);
  }

  /// Bytes held outside the two inline words (0 unless spilled); what the
  /// budget accounting adds on top of the term-map slot.
  std::size_t spill_bytes() const {
    return spilled() ? detail::spill_capacity_bytes(size()) : 0;
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = VarId;
    using difference_type = std::ptrdiff_t;
    using pointer = const VarId*;
    using reference = VarId;

    const_iterator() = default;
    const_iterator(const PackedMono* m, std::size_t i) : m_(m), i_(i) {}
    VarId operator*() const { return (*m_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator c = *this;
      ++i_;
      return c;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const PackedMono* m_ = nullptr;
    std::size_t i_ = 0;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  bool operator==(const PackedMono& o) const {
    if (w0_ != o.w0_) return false;
    if (!spilled()) return w1_ == o.w1_;
    const VarId* a = spill_ptr();
    const VarId* b = o.spill_ptr();
    for (std::size_t i = 0, n = size(); i < n; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }
  bool operator!=(const PackedMono& o) const { return !(*this == o); }

  /// Lexicographic over the id sequence (shorter prefix first) — the same
  /// order std::vector<VarId>::operator< induces, so renderings and sorted
  /// checkpoint serializations agree across representations.
  bool operator<(const PackedMono& o) const {
    const std::size_t n = size(), m = o.size();
    const std::size_t c = n < m ? n : m;
    for (std::size_t i = 0; i < c; ++i) {
      const VarId a = (*this)[i], b = o[i];
      if (a != b) return a < b;
    }
    return n < m;
  }

  /// Full-avalanche hash. Inline monomials mix the two words directly —
  /// no per-id loop, the point of packing — with distinct salts per word so
  /// id slots in w0 and w1 never cancel.
  std::uint64_t hash() const {
    if (!spilled()) {
      return mix(w0_ + 0x9e3779b97f4a7c15ull) ^
             mix(w1_ + 0xd1b54a32d192ed03ull);
    }
    std::uint64_t h = 0x9e3779b97f4a7c15ull * (size() + 1);
    for (VarId v : *this) h = mix(h + 0x9e3779b97f4a7c15ull + v);
    return h;
  }

  /// This monomial with one occurrence of `v` removed (a no-op when absent):
  /// the rewriter's "strip the substituted variable" step. Re-canonicalizes,
  /// so a 7-variable spill dropping to 6 returns to the inline form. The
  /// inline form filters through a stack buffer without touching the heap.
  PackedMono without(VarId v) const {
    if (!spilled()) {
      VarId buf[kMaxInline];
      const std::size_t n = static_cast<std::size_t>(w0_ & 7u);
      std::size_t j = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const VarId x = inline_id(i);
        if (x != v) buf[j++] = x;
      }
      return from_sorted(buf, j);
    }
    return without_spilled(v);
  }

  /// The ids as a plain vector (serialization, conversions to the legacy
  /// representation).
  std::vector<VarId> ids() const { return std::vector<VarId>(begin(), end()); }

 private:
  friend PackedMono packed_mono_mul(const PackedMono&, const PackedMono&);

  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z;
  }

  VarId inline_id(std::size_t i) const {
    const std::uint64_t w = i < 3 ? w0_ >> (4 + 20 * i) : w1_ >> (20 * (i - 3));
    return static_cast<VarId>(w & 0xFFFFFu);
  }

  const VarId* spill_ptr() const {
    return reinterpret_cast<const VarId*>(static_cast<std::uintptr_t>(w1_));
  }
  VarId* spill_ptr() {
    return reinterpret_cast<VarId*>(static_cast<std::uintptr_t>(w1_));
  }

  void destroy() noexcept {
    if (spilled()) detail::spill_free(spill_ptr(), size());
  }
  void copy_from(const PackedMono& o);
  static PackedMono spill_from(const VarId* ids, std::size_t n);
  PackedMono without_spilled(VarId v) const;

  std::uint64_t w0_ = 0;
  std::uint64_t w1_ = 0;
};

/// Spilled-operand fallback for packed_mono_mul below.
PackedMono packed_mono_mul_spilled(const PackedMono& a, const PackedMono& b);

/// Union of two monomials — x² = x collapses duplicates (multilinear mul).
/// Two inline operands merge through a stack buffer entirely in the header
/// (the reduction chain's innermost operation); any spilled operand takes
/// the out-of-line path.
inline PackedMono packed_mono_mul(const PackedMono& a, const PackedMono& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (!a.spilled() && !b.spilled()) {
    VarId buf[2 * PackedMono::kMaxInline];
    const std::size_t na = a.size(), nb = b.size();
    std::size_t i = 0, j = 0, n = 0;
    while (i < na && j < nb) {
      const VarId x = a.inline_id(i), y = b.inline_id(j);
      if (x < y) {
        buf[n++] = x;
        ++i;
      } else if (y < x) {
        buf[n++] = y;
        ++j;
      } else {
        buf[n++] = x;
        ++i;
        ++j;
      }
    }
    for (; i < na; ++i) buf[n++] = a.inline_id(i);
    for (; j < nb; ++j) buf[n++] = b.inline_id(j);
    return PackedMono::from_sorted(buf, n);
  }
  return packed_mono_mul_spilled(a, b);
}

struct PackedMonoHash {
  std::size_t operator()(const PackedMono& m) const {
    return static_cast<std::size_t>(m.hash());
  }
};

/// Renders as {1,4,9} — test failure messages, not a serialization.
std::ostream& operator<<(std::ostream& os, const PackedMono& m);

}  // namespace gfa
