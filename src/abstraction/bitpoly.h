#pragma once
// Multilinear polynomials over bit variables with F_{2^k} coefficients.
//
// This is the specialized representation behind the paper's §5 optimization.
// Under RATO every gate polynomial is x + tail(x) with a unique leading bit
// variable, so the whole Gröbner-basis computation collapses into a chain of
// substitutions ("one S-polynomial, then division"). Those substitutions only
// ever touch *multilinear* monomials: the vanishing polynomials x² - x of J_0
// are applied eagerly by unioning variable sets, so a monomial is just a
// sorted set of VarIds and a coefficient in F_{2^k}.
//
// Compared to the general MPoly engine this drops: exponents (always 1),
// term-order bookkeeping (substitution order comes from the circuit), and
// ordered storage (a hash map suffices) — which is what makes 100k-gate
// multipliers abstractable.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gf/gf2k.h"
#include "poly/varpool.h"

namespace gfa {

/// A multilinear monomial: strictly increasing VarIds.
using BitMono = std::vector<VarId>;

struct BitMonoHash {
  /// splitmix64 finalizer: full-width mixing so every input bit reaches
  /// every output bit. The earlier FNV-1a loop xored whole 32-bit VarIds at
  /// once; consecutive net ids (the common case — monomials over neighboring
  /// circuit nets) then differed only in a few low bits and the map's bucket
  /// distribution degraded exactly when the term map was largest.
  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z;
  }

  std::size_t operator()(const BitMono& m) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull * (m.size() + 1);
    for (VarId v : m) h = mix(h + 0x9e3779b97f4a7c15ull + v);
    return static_cast<std::size_t>(h);
  }
};

/// Union of two multilinear monomials (x² = x collapses duplicates).
BitMono bitmono_mul(const BitMono& a, const BitMono& b);

class BitPoly {
 public:
  using Elem = Gf2k::Elem;
  using TermMap = std::unordered_map<BitMono, Elem, BitMonoHash>;

  explicit BitPoly(const Gf2k* field) : field_(field) {}

  static BitPoly constant(const Gf2k* field, Elem c);
  static BitPoly variable(const Gf2k* field, VarId v);

  const Gf2k& field() const { return *field_; }

  bool is_zero() const { return terms_.empty(); }
  std::size_t num_terms() const { return terms_.size(); }

  /// Adds c·m, cancelling to zero where coefficients collide (char 2).
  void add_term(const BitMono& m, const Elem& c);
  void add_term(BitMono&& m, const Elem& c);

  Elem coeff(const BitMono& m) const;

  BitPoly operator+(const BitPoly& rhs) const;
  BitPoly& operator+=(const BitPoly& rhs);
  BitPoly operator*(const BitPoly& rhs) const;
  BitPoly scaled(const Elem& c) const;

  /// Maximum number of variables in any monomial (0 for constants).
  std::size_t max_monomial_size() const;

  /// Evaluates with every bit variable set to the given 0/1 value.
  Elem eval(const std::vector<bool>& assignment) const;

  const TermMap& terms() const { return terms_; }
  TermMap& mutable_terms() { return terms_; }

  bool operator==(const BitPoly& rhs) const { return terms_ == rhs.terms_; }

  std::string to_string(const VarPool& pool) const;

 private:
  const Gf2k* field_;
  TermMap terms_;
};

}  // namespace gfa
