#pragma once
// Multilinear polynomials over bit variables with F_{2^k} coefficients.
//
// This is the specialized representation behind the paper's §5 optimization.
// Under RATO every gate polynomial is x + tail(x) with a unique leading bit
// variable, so the whole Gröbner-basis computation collapses into a chain of
// substitutions ("one S-polynomial, then division"). Those substitutions only
// ever touch *multilinear* monomials: the vanishing polynomials x² - x of J_0
// are applied eagerly by unioning variable sets, so a monomial is just a
// sorted set of VarIds and a coefficient in F_{2^k}.
//
// Compared to the general MPoly engine this drops: exponents (always 1),
// term-order bookkeeping (substitution order comes from the circuit), and
// ordered storage (a hash map suffices) — which is what makes 100k-gate
// multipliers abstractable.
//
// Representation tiering (phase-aware facade)
// -------------------------------------------
// The layer is templated on the monomial representation:
//
//   * PackedMono (the default, BitPoly): two-word inline monomials with an
//     arena spill (packed_mono.h) keyed into a flat open-addressing term map
//     (term_map.h). The circuit-variable phase — rewriter chain, extractor,
//     F4 reduction, hierarchy — runs entirely on this tier.
//   * LegacyBitMono = std::vector<VarId> in an unordered_map (LegacyBitPoly):
//     the pre-packing representation, kept as the differential/ablation
//     baseline behind ExtractionOptions::poly_repr and bench_ablation's
//     --poly-repr=vector.
//
// The word-level endgame (word_lift, equivalence) keeps the generic MPoly
// ring with BigUint exponents; a legacy-tier chain converts its remainder to
// the packed form at that boundary, so everything downstream of the
// reduction chain is representation-agnostic. BitRepr<M> is the trait bundle
// the templated engines (rewriter.h, extractor.cpp) select on.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "abstraction/packed_mono.h"
#include "abstraction/term_map.h"
#include "gf/gf2k.h"
#include "poly/varpool.h"

namespace gfa {

/// Which monomial tier the reduction chain runs on (see the header comment).
enum class PolyRepr {
  kPacked,  // PackedMono + flat arena map (default)
  kVector,  // std::vector<VarId> + unordered_map (legacy baseline)
};

inline const char* poly_repr_name(PolyRepr r) {
  return r == PolyRepr::kPacked ? "packed" : "vector";
}

/// A multilinear monomial in the packed tier: strictly increasing VarIds,
/// inline in two words (see packed_mono.h).
using BitMono = PackedMono;

/// The legacy tier's monomial: the ids as a plain sorted vector.
using LegacyBitMono = std::vector<VarId>;

struct BitMonoHash {
  /// splitmix64 finalizer: full-width mixing so every input bit reaches
  /// every output bit. The earlier FNV-1a loop xored whole 32-bit VarIds at
  /// once; consecutive net ids (the common case — monomials over neighboring
  /// circuit nets) then differed only in a few low bits and the map's bucket
  /// distribution degraded exactly when the term map was largest.
  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z;
  }

  std::size_t operator()(const LegacyBitMono& m) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull * (m.size() + 1);
    for (VarId v : m) h = mix(h + 0x9e3779b97f4a7c15ull + v);
    return static_cast<std::size_t>(h);
  }
};

/// Union of two multilinear monomials (x² = x collapses duplicates).
LegacyBitMono bitmono_mul(const LegacyBitMono& a, const LegacyBitMono& b);
inline PackedMono bitmono_mul(const PackedMono& a, const PackedMono& b) {
  return packed_mono_mul(a, b);
}

/// The per-representation trait bundle the templated engines select on.
template <class M>
struct BitRepr;

template <>
struct BitRepr<PackedMono> {
  static constexpr PolyRepr kKind = PolyRepr::kPacked;
  using Mono = PackedMono;
  using TermMap = PackedTermMap<Gf2k::Elem>;

  /// `ids` sorted and unique.
  static Mono from_ids(std::vector<VarId> ids) {
    return PackedMono::from_sorted(ids.data(), ids.size());
  }
  /// Checkpoint serialization runs on packed monomials.
  static PackedMono to_packed(const Mono& m) { return m; }
  static Mono from_packed(PackedMono m) { return m; }
  /// `m` with one variable stripped (the substitution hot path).
  static Mono without(const Mono& m, VarId v) { return m.without(v); }
  /// Heap bytes a stored monomial owns beyond its inline footprint.
  static std::size_t mono_heap_bytes(const Mono& m) { return m.spill_bytes(); }
  /// Bytes the term map charges against the rewriter.terms budget site:
  /// exact arena footprint plus a per-coefficient estimate (the Gf2Poly word
  /// buffers live outside the arena).
  static std::size_t map_bytes(const TermMap& t) {
    return t.allocated_bytes() + t.size() * 32;
  }
};

template <>
struct BitRepr<LegacyBitMono> {
  static constexpr PolyRepr kKind = PolyRepr::kVector;
  using Mono = LegacyBitMono;
  using TermMap = std::unordered_map<LegacyBitMono, Gf2k::Elem, BitMonoHash>;

  static Mono from_ids(std::vector<VarId> ids) { return ids; }
  static PackedMono to_packed(const Mono& m) {
    return PackedMono::from_sorted(m.data(), m.size());
  }
  static Mono from_packed(const PackedMono& m) { return m.ids(); }
  static Mono without(const Mono& m, VarId v) {
    Mono rest;
    rest.reserve(m.size() - 1);
    for (VarId x : m)
      if (x != v) rest.push_back(x);
    return rest;
  }
  static std::size_t mono_heap_bytes(const Mono&) {
    return 0;  // folded into the kRewriterTermBytes per-entry estimate
  }
  static std::size_t map_bytes(const TermMap& t);  // defined in bitpoly.cpp
};

template <class M>
class BasicBitPoly {
 public:
  using Mono = M;
  using Elem = Gf2k::Elem;
  using TermMap = typename BitRepr<M>::TermMap;

  explicit BasicBitPoly(const Gf2k* field) : field_(field) {}

  static BasicBitPoly constant(const Gf2k* field, Elem c) {
    BasicBitPoly p(field);
    p.add_term(M{}, c);
    return p;
  }
  static BasicBitPoly variable(const Gf2k* field, VarId v) {
    BasicBitPoly p(field);
    p.add_term(M{v}, field->one());
    return p;
  }

  const Gf2k& field() const { return *field_; }

  bool is_zero() const { return terms_.empty(); }
  std::size_t num_terms() const { return terms_.size(); }

  /// Sizes the term map for `n` expected terms up front; callers that know
  /// the operand term counts (operator*, bulk add loops) pass the product or
  /// sum so the map never rehashes mid-accumulation.
  void reserve(std::size_t n) { terms_.reserve(n); }

  /// Adds c·m, cancelling to zero where coefficients collide (char 2).
  void add_term(const M& m, const Elem& c) {
    if (c.is_zero()) return;
    auto [it, inserted] = terms_.try_emplace(m, c);
    if (!inserted) {
      it->second += c;  // field add == GF(2)[x] XOR
      if (it->second.is_zero()) terms_.erase(it);
    }
  }
  void add_term(M&& m, const Elem& c) {
    if (c.is_zero()) return;
    auto [it, inserted] = terms_.try_emplace(std::move(m), c);
    if (!inserted) {
      it->second += c;
      if (it->second.is_zero()) terms_.erase(it);
    }
  }

  Elem coeff(const M& m) const {
    auto it = terms_.find(m);
    return it == terms_.end() ? field_->zero() : it->second;
  }

  BasicBitPoly operator+(const BasicBitPoly& rhs) const {
    BasicBitPoly out = *this;
    out += rhs;
    return out;
  }
  BasicBitPoly& operator+=(const BasicBitPoly& rhs) {
    reserve(terms_.size() + rhs.terms_.size());
    for (const auto& [m, c] : rhs.terms_) add_term(m, c);
    return *this;
  }
  /// Multilinear product; pre-reserves for the worst-case |lhs|·|rhs| fanout
  /// (capped — cancellation usually keeps the result far smaller).
  BasicBitPoly operator*(const BasicBitPoly& rhs) const {
    BasicBitPoly out(field_);
    out.reserve(std::min<std::size_t>(
        terms_.size() * rhs.terms_.size(), std::size_t{1} << 16));
    for (const auto& [ma, ca] : terms_)
      for (const auto& [mb, cb] : rhs.terms_)
        out.add_term(bitmono_mul(ma, mb), field_->mul(ca, cb));
    return out;
  }
  BasicBitPoly scaled(const Elem& c) const {
    BasicBitPoly out(field_);
    if (c.is_zero()) return out;
    out.reserve(terms_.size());
    for (const auto& [m, coeff] : terms_) out.add_term(m, field_->mul(coeff, c));
    return out;
  }

  /// Maximum number of variables in any monomial (0 for constants).
  std::size_t max_monomial_size() const {
    std::size_t mx = 0;
    for (const auto& [m, c] : terms_) mx = std::max(mx, m.size());
    return mx;
  }

  /// Evaluates with every bit variable set to the given 0/1 value.
  Elem eval(const std::vector<bool>& assignment) const;

  const TermMap& terms() const { return terms_; }
  TermMap& mutable_terms() { return terms_; }

  bool operator==(const BasicBitPoly& rhs) const {
    return terms_ == rhs.terms_;
  }

  std::string to_string(const VarPool& pool) const;

 private:
  const Gf2k* field_;
  TermMap terms_;
};

/// The packed tier: what every engine means by "BitPoly".
using BitPoly = BasicBitPoly<BitMono>;
/// The legacy tier, kept for differential testing and ablation.
using LegacyBitPoly = BasicBitPoly<LegacyBitMono>;

extern template class BasicBitPoly<PackedMono>;
extern template class BasicBitPoly<LegacyBitMono>;

}  // namespace gfa
