#include "abstraction/canon_serial.h"

#include <sstream>

#include "poly/monomial.h"
#include "poly/mpoly.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace gfa {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_of_words(const std::vector<std::uint64_t>& words) {
  // Trailing zero words contribute nothing; find the top non-zero word.
  std::size_t top = words.size();
  while (top > 0 && words[top - 1] == 0) --top;
  if (top == 0) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t w = top; w-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const unsigned nibble =
          static_cast<unsigned>((words[w] >> shift) & 0xF);
      if (leading && nibble == 0) continue;
      leading = false;
      out += kDigits[nibble];
    }
  }
  return out;
}

Result<std::vector<std::uint64_t>> words_of_hex(std::string_view hex) {
  if (hex.empty())
    return Status::invalid_argument("empty hex string");
  std::vector<std::uint64_t> words((hex.size() + 15) / 16, 0);
  // Nibble i from the right lands in word i/16, shift 4*(i%16).
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const int d = hex_digit(hex[hex.size() - 1 - i]);
    if (d < 0)
      return Status::invalid_argument("non-hex character in '" +
                                      std::string(hex) + "'");
    words[i / 16] |= static_cast<std::uint64_t>(d) << (4 * (i % 16));
  }
  while (!words.empty() && words.back() == 0) words.pop_back();
  return words;
}

std::string encode_canon_form(const WordFunction& fn) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("v", kCanonFormVersion);
  w.member("output_word", fn.output_word);
  w.key("input_words");
  w.begin_array();
  for (const std::string& name : fn.input_words) w.value(name);
  w.end_array();
  w.key("terms");
  w.begin_array();
  for (const auto& [mono, coeff] : fn.g.terms()) {
    w.begin_object();
    w.key("m");
    w.begin_array();
    for (const auto& [var, exp] : mono.factors()) {
      w.begin_array();
      w.value(fn.pool.name(var));
      w.value(hex_of_words(exp.words()));
      w.end_array();
    }
    w.end_array();
    w.member("c", hex_of_words(coeff.words()));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

Result<WordFunction> decode_canon_form(std::string_view json,
                                       const Gf2k& field) {
  Result<JsonValue> doc = parse_json(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object())
    return Status::invalid_argument("canonical form is not a JSON object");
  if (doc->u64_or("v", 0) != kCanonFormVersion)
    return Status::invalid_argument(
        "canonical form has version " + std::to_string(doc->u64_or("v", 0)) +
        " (this build reads version " + std::to_string(kCanonFormVersion) +
        ")");
  WordFunction fn;
  fn.output_word = doc->string_or("output_word", "");
  if (fn.output_word.empty())
    return Status::invalid_argument("canonical form is missing output_word");
  const JsonValue* inputs = doc->find("input_words");
  if (inputs == nullptr || !inputs->is_array())
    return Status::invalid_argument("canonical form is missing input_words");
  for (const JsonValue& item : inputs->items()) {
    if (!item.is_string() || item.as_string().empty())
      return Status::invalid_argument("canonical form has a bad input word");
    fn.input_words.push_back(item.as_string());
    fn.pool.intern(item.as_string(), VarKind::kWord);
  }
  const JsonValue* terms = doc->find("terms");
  if (terms == nullptr || !terms->is_array())
    return Status::invalid_argument("canonical form is missing terms");
  fn.g = MPoly(&field);
  for (const JsonValue& term : terms->items()) {
    if (!term.is_object())
      return Status::invalid_argument("canonical form has a non-object term");
    const Result<std::vector<std::uint64_t>> coeff_words =
        words_of_hex(term.string_or("c", ""));
    if (!coeff_words.ok()) return coeff_words.status();
    const Gf2Poly coeff =
        Gf2Poly::from_words(coeff_words->data(), coeff_words->size());
    if (coeff.degree() >= static_cast<int>(field.k()))
      return Status::invalid_argument(
          "canonical form carries a coefficient of degree " +
          std::to_string(coeff.degree()) + " >= k = " +
          std::to_string(field.k()));
    const JsonValue* mono = term.find("m");
    if (mono == nullptr || !mono->is_array())
      return Status::invalid_argument("canonical form term is missing m");
    std::vector<std::pair<VarId, BigUint>> factors;
    for (const JsonValue& factor : mono->items()) {
      if (!factor.is_array() || factor.items().size() != 2 ||
          !factor.items()[0].is_string() || !factor.items()[1].is_string())
        return Status::invalid_argument(
            "canonical form has a malformed monomial factor");
      const std::string& name = factor.items()[0].as_string();
      if (!fn.pool.contains(name))
        return Status::invalid_argument(
            "canonical form mentions variable '" + name +
            "' outside its input words");
      const Result<std::vector<std::uint64_t>> exp_words =
          words_of_hex(factor.items()[1].as_string());
      if (!exp_words.ok()) return exp_words.status();
      factors.emplace_back(fn.pool.id(name),
                           BigUint::from_words(std::move(*exp_words)));
    }
    fn.g.add_term(Monomial::from_pairs(std::move(factors)), coeff);
  }
  return fn;
}

}  // namespace gfa
