#pragma once
// F4-style batch reduction (paper §6: "we exploit an F4-style reduction
// approach, described in [5] (Section 7), for which we built a custom tool").
//
// Where the default extractor substitutes one gate variable at a time through
// an occurrence index, the F4-style engine is *level-synchronous*: it walks
// the reverse-topological levels of the circuit and, at each level, reduces
// every polynomial term against all of that level's gate polynomials in one
// batch pass — the analogue of Faugère's F4 trading many single divisions for
// one big elimination step. Both engines compute the same canonical
// remainder (and the tests cross-check them); their cost profiles differ,
// which bench_ablation measures.

#include "abstraction/extractor.h"

namespace gfa {

/// Drop-in alternative to extract_word_function using the batch engine.
WordFunction extract_word_function_f4(const Netlist& netlist, const Gf2k& field,
                                      const ExtractionOptions& options = {});

}  // namespace gfa
