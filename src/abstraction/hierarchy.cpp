#include "abstraction/hierarchy.h"

#include <cassert>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "abstraction/word_lift.h"
#include "util/parallel_for.h"
#include "util/resource_budget.h"

namespace gfa {

namespace {

/// Rewrites `src` (over `src_pool` word variables) into `target_pool`, mapping
/// every variable through `signal_poly` (polynomials over the target pool).
MPoly apply_signal_map(
    const MPoly& src, const VarPool& src_pool,
    const std::unordered_map<std::string, const MPoly*>& by_block_word,
    const Gf2k& field, const VarPool& target_pool) {
  MPoly out(&field);
  for (const auto& [mono, coeff] : src.terms()) {
    MPoly acc = MPoly::constant(&field, coeff);
    for (const auto& [v, e] : mono.factors()) {
      auto it = by_block_word.find(src_pool.name(v));
      if (it == by_block_word.end())
        throw std::logic_error("block polynomial mentions unbound word '" +
                               src_pool.name(v) + "'");
      // acc *= driver^e, normalized at each squaring step.
      const MPoly& base = *it->second;
      MPoly p = MPoly::constant(&field, field.one());
      const int bits = e.bit_length();
      for (int i = bits; i >= 0; --i) {
        p = (p * p).normalized_vanishing(target_pool);
        if (e.bit(static_cast<unsigned>(i)))
          p = (p * base).normalized_vanishing(target_pool);
      }
      acc = (acc * p).normalized_vanishing(target_pool);
    }
    out += acc;
  }
  return out.normalized_vanishing(target_pool);
}

}  // namespace

HierarchicalAbstraction abstract_hierarchy(const WordSignalGraph& graph,
                                           const Gf2k& field,
                                           const ExtractionOptions& options) {
  HierarchicalAbstraction result;
  WordFunction& composed = result.composed;

  // Shared word-level pool over the primary inputs.
  for (const std::string& name : graph.primary_inputs) {
    composed.pool.intern(name, VarKind::kWord);
    composed.input_words.push_back(name);
  }

  // Signal name -> polynomial over the primary inputs.
  std::unordered_map<std::string, MPoly> signal;
  for (const std::string& name : graph.primary_inputs)
    signal.emplace(name, MPoly::variable(&field, composed.pool.id(name)));

  // One basis-change matrix serves every block over this field.
  const WordLift lift(&field);
  ExtractionOptions block_options = options;
  if (block_options.shared_lift == nullptr) block_options.shared_lift = &lift;

  // A block netlist instantiated several times (e.g. the shared multiplier of
  // an Itoh–Tsujii chain) is abstracted once. The unique blocks (the Fig. 1
  // blocks of a Montgomery multiplier) are mutually independent, so they are
  // abstracted concurrently; each extraction's own chain then shards to
  // whatever width is left (nested loops degrade to serial).
  std::vector<const Netlist*> unique_blocks;
  std::unordered_map<const Netlist*, WordFunction> memo;
  for (const WordSignalGraph::Instance& inst : graph.instances) {
    if (memo.emplace(inst.block, WordFunction{}).second)
      unique_blocks.push_back(inst.block);
  }
  // When the run carries a memory budget, each concurrent block leases from
  // a proportional slice of it so the blocks together cannot exceed the
  // parent limit; the child peaks fold back into the parent afterwards so
  // the run report still sees the hierarchy's high-water mark.
  ResourceBudget* parent_budget = budget_of(options.control);
  const std::size_t slice =
      parent_budget != nullptr && parent_budget->limit_bytes() != 0 &&
              unique_blocks.size() > 1
          ? parent_budget->limit_bytes() / unique_blocks.size()
          : 0;
  std::vector<std::optional<ResourceBudget>> block_budgets(
      unique_blocks.size());
  std::vector<ExecControl> block_controls(unique_blocks.size());
  std::vector<WordFunction> block_fns(unique_blocks.size());
  parallel_for(unique_blocks.size(), [&](std::size_t i) {
    ExtractionOptions o = block_options;
    if (slice != 0) {
      block_budgets[i].emplace(slice);
      block_controls[i] = *options.control;
      block_controls[i].budget = &*block_budgets[i];
      o.control = &block_controls[i];
    }
    block_fns[i] = extract_word_function(*unique_blocks[i], field, o);
  }, options.control);
  if (slice != 0) {
    std::size_t children_peak = 0;
    for (const auto& b : block_budgets)
      if (b) children_peak += b->peak_bytes();
    parent_budget->fold_peak(children_peak);
  }
  for (std::size_t i = 0; i < unique_blocks.size(); ++i)
    memo[unique_blocks[i]] = std::move(block_fns[i]);

  for (const WordSignalGraph::Instance& inst : graph.instances) {
    WordFunction fn = memo.at(inst.block);

    std::unordered_map<std::string, const MPoly*> bound;
    for (const auto& [block_word, sig] : inst.inputs) {
      auto it = signal.find(sig);
      if (it == signal.end())
        throw std::logic_error("instance '" + inst.name +
                               "' consumes undriven signal '" + sig + "'");
      bound.emplace(block_word, &it->second);
    }
    MPoly g = apply_signal_map(fn.g, fn.pool, bound, field, composed.pool);

    composed.stats.substitutions += fn.stats.substitutions;
    composed.stats.peak_terms =
        std::max(composed.stats.peak_terms, fn.stats.peak_terms);
    result.blocks.emplace_back(inst.name, std::move(fn));

    if (!signal.emplace(inst.output_signal, std::move(g)).second)
      throw std::logic_error("signal '" + inst.output_signal + "' driven twice");
  }

  auto it = signal.find(graph.output_signal);
  if (it == signal.end())
    throw std::logic_error("output signal '" + graph.output_signal + "' undriven");
  composed.g = it->second;
  composed.output_word = graph.output_signal;
  return result;
}

HierarchicalAbstraction abstract_montgomery(const MontgomeryHierarchy& h,
                                            const Gf2k& field,
                                            const ExtractionOptions& options) {
  WordSignalGraph graph;
  graph.primary_inputs = {"A", "B"};
  graph.instances = {
      {&h.blk_a, "Blk A", {{"X", "A"}}, "AR"},
      {&h.blk_b, "Blk B", {{"X", "B"}}, "BR"},
      {&h.blk_mid, "Blk Mid", {{"X", "AR"}, {"Y", "BR"}}, "T"},
      {&h.blk_out, "Blk Out", {{"X", "T"}}, "G"},
  };
  graph.output_signal = "G";
  return abstract_hierarchy(graph, field, options);
}

}  // namespace gfa
