#pragma once
// Abstraction term orders (paper Definitions 4.2 and 5.1).
//
// The abstraction term order > is lex with  circuit bit variables > Z > word
// inputs;  the *refined* abstraction term order (RATO) additionally fixes the
// relative order of the circuit variables by reverse topological level, so
// that every gate polynomial x + tail(x) has leading term x and all leading
// terms are pairwise relatively prime. By the product criterion the only
// critical pair left is (f_w, f_g) — which the extractor exploits.

#include <vector>

#include "circuit/gate_poly.h"
#include "circuit/netlist.h"
#include "poly/monomial.h"

namespace gfa {

/// Input/output word classification: a word is an input word iff every bit is
/// a primary input.
std::vector<const Word*> input_words(const Netlist& netlist);
std::vector<const Word*> output_words(const Netlist& netlist);
/// The sole output word, or nullptr when there are zero or several.
const Word* output_word(const Netlist& netlist);

/// Nets sorted by decreasing RATO priority: ascending reverse-topological
/// level (outputs first), ties by NetId. Substituting tails in this order
/// guarantees each variable is eliminated after all its fanouts.
std::vector<NetId> rato_net_order(const Netlist& netlist);

/// The RATO as a TermOrder over a circuit ideal's variables: bit variables in
/// rato_net_order, then the output word variable, then input word variables.
TermOrder make_rato_order(const Netlist& netlist, const CircuitIdeal& ideal);

/// The unrefined abstraction term order of Definition 4.2 (bit variables in
/// arbitrary — here netlist — order, then Z, then inputs). Used by the
/// full-Gröbner-basis baseline to show why the refinement matters.
TermOrder make_abstraction_order(const Netlist& netlist, const CircuitIdeal& ideal);

}  // namespace gfa
