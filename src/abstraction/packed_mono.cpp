#include "abstraction/packed_mono.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace gfa {

namespace detail {

namespace {

/// Size classes in ids: spills start at 7 ids, so the smallest class is 8.
/// Buffers above the largest class go straight to operator new.
constexpr std::size_t kClassIds[] = {8, 16, 32, 64, 128, 256};
constexpr std::size_t kNumClasses = sizeof(kClassIds) / sizeof(kClassIds[0]);
constexpr std::size_t kMaxCachedPerClass = 64;

int class_of(std::size_t n) {
  for (std::size_t c = 0; c < kNumClasses; ++c)
    if (n <= kClassIds[c]) return static_cast<int>(c);
  return -1;
}

struct FreeList {
  VarId* slots[kMaxCachedPerClass];
  std::size_t count = 0;
};

/// Global counters (relaxed — stats, not synchronization); the free lists
/// themselves are thread-local and never shared.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_pool_hits{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_live_bytes{0};

FreeList& free_list(std::size_t cls) {
  thread_local FreeList lists[kNumClasses];
  return lists[cls];
}

}  // namespace

std::size_t spill_capacity_bytes(std::size_t n) noexcept {
  const int cls = class_of(n);
  const std::size_t ids = cls < 0 ? n : kClassIds[cls];
  return ids * sizeof(VarId);
}

VarId* spill_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(spill_capacity_bytes(n), std::memory_order_relaxed);
  const int cls = class_of(n);
  if (cls >= 0) {
    FreeList& fl = free_list(static_cast<std::size_t>(cls));
    if (fl.count > 0) {
      g_pool_hits.fetch_add(1, std::memory_order_relaxed);
      return fl.slots[--fl.count];
    }
    return new VarId[kClassIds[cls]];
  }
  return new VarId[n];
}

void spill_free(VarId* p, std::size_t n) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(spill_capacity_bytes(n), std::memory_order_relaxed);
  const int cls = class_of(n);
  if (cls >= 0) {
    FreeList& fl = free_list(static_cast<std::size_t>(cls));
    if (fl.count < kMaxCachedPerClass) {
      fl.slots[fl.count++] = p;
      return;
    }
  }
  delete[] p;
}

}  // namespace detail

SpillPoolStats packed_mono_pool_stats() {
  SpillPoolStats s;
  s.allocs = detail::g_allocs.load(std::memory_order_relaxed);
  s.pool_hits = detail::g_pool_hits.load(std::memory_order_relaxed);
  s.frees = detail::g_frees.load(std::memory_order_relaxed);
  s.live_bytes = detail::g_live_bytes.load(std::memory_order_relaxed);
  return s;
}

PackedMono PackedMono::spill_from(const VarId* ids, std::size_t n) {
  PackedMono m;
  VarId* buf = detail::spill_alloc(n);
  std::memcpy(buf, ids, n * sizeof(VarId));
  m.w0_ = (static_cast<std::uint64_t>(n) << 3) | 7u;
  m.w1_ = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(buf));
  return m;
}

PackedMono::PackedMono(std::initializer_list<VarId> list) {
  std::vector<VarId> ids(list);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  *this = from_sorted(ids.data(), ids.size());
}

void PackedMono::copy_from(const PackedMono& o) {
  w0_ = o.w0_;
  if (!o.spilled()) {
    w1_ = o.w1_;
    return;
  }
  const std::size_t n = o.size();
  VarId* buf = detail::spill_alloc(n);
  std::memcpy(buf, o.spill_ptr(), n * sizeof(VarId));
  w1_ = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(buf));
}

PackedMono PackedMono::without_spilled(VarId v) const {
  const std::size_t n = size();
  std::vector<VarId> heap(n);
  VarId* out = heap.data();
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const VarId x = (*this)[i];
    if (x != v) out[j++] = x;
  }
  return from_sorted(out, j);
}

PackedMono packed_mono_mul_spilled(const PackedMono& a, const PackedMono& b) {
  const std::size_t na = a.size(), nb = b.size();
  if (na == 0) return b;
  if (nb == 0) return a;
  VarId stack[2 * PackedMono::kMaxInline] = {};
  std::vector<VarId> heap;
  VarId* out = stack;
  if (na + nb > 2 * PackedMono::kMaxInline) {
    heap.resize(na + nb);
    out = heap.data();
  }
  // Sorted-set union by index; operator[] is a couple of shifts inline.
  std::size_t i = 0, j = 0, n = 0;
  while (i < na && j < nb) {
    const VarId x = a[i], y = b[j];
    if (x < y) {
      out[n++] = x;
      ++i;
    } else if (y < x) {
      out[n++] = y;
      ++j;
    } else {
      out[n++] = x;
      ++i;
      ++j;
    }
  }
  for (; i < na; ++i) out[n++] = a[i];
  for (; j < nb; ++j) out[n++] = b[j];
  return PackedMono::from_sorted(out, n);
}

std::ostream& operator<<(std::ostream& os, const PackedMono& m) {
  os << '{';
  bool first = true;
  for (VarId v : m) {
    if (!first) os << ',';
    os << v;
    first = false;
  }
  return os << '}';
}

}  // namespace gfa
