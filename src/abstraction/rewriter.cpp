#include "abstraction/rewriter.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa {

namespace {

/// Moves every (monomial, coefficient) pair out of `map` through `fn` and
/// leaves the map empty. The packed tier drains its arena in slot order; the
/// legacy tier extracts node handles. Both orders are unspecified, and both
/// feed only commutative XOR-merges, so the merged polynomial is identical.
template <class M, class Fn>
void drain_map(typename BitRepr<M>::TermMap& map, Fn&& fn) {
  if constexpr (BitRepr<M>::kKind == PolyRepr::kPacked) {
    map.drain(fn);
  } else {
    while (!map.empty()) {
      auto nh = map.extract(map.begin());
      fn(std::move(nh.key()), std::move(nh.mapped()));
    }
  }
}

/// Runs one substitution, recording its latency into the
/// rewriter.substitution_us histogram when `sample` is set. The clock pair is
/// the whole cost, so callers pass sample = metrics_enabled && a 1-in-64
/// cadence — the disabled path is the plain call behind one branch.
template <class Fn>
inline void timed_substitute(bool sample, Fn&& fn) {
  if (sample) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto dt = std::chrono::steady_clock::now() - t0;
    GFA_HISTOGRAM(
        "rewriter.substitution_us",
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
  } else {
    fn();
  }
}

}  // namespace

template <class M>
template <class TailT>
void BasicBackwardRewriter<M>::substitute_impl(VarId v, const TailT& tail) {
  // Flat tails carry implicit all-one coefficients: every expanded term
  // reuses the affected term's coefficient unchanged, and the last expansion
  // moves it (its heap buffer lands in the map without a copy).
  constexpr bool kFlat = std::is_same_v<TailT, FlatTail<M>>;
  constexpr bool kPacked = std::is_same_v<M, PackedMono>;
  if (occurs_[v].empty()) return;  // cheap skip for sharded chains
  typename OccListOf<M>::type pending = std::move(occurs_[v]);
  occurs_[v] = {};

  const unsigned width =
      pending.size() < kChunkedSubstitutionMin ? 1 : parallel_available_width();
  if (width < 2) {
    const std::size_t np = pending.size();
    if constexpr (kFlat && kPacked) {
      if (tail.monos.size() == 2) {
        // XOR2 — the dominant gate shape — gets a software-pipelined loop.
        // Every map access here is a random probe into a table far larger
        // than L2, but each pending term's expansion is a pure function of
        // (term, v, tail): the next term's find slot, both of its expanded
        // monomials' insert slots, and its occurrence-list lines can all be
        // prefetched a full iteration (~several hundred cycles) ahead,
        // overlapping misses that a naive loop serializes.
        const auto& ms = tail.monos;
        M nm0, nm1;  // staged expansion of pending[pi + 1]
        const auto stage = [&](const M& mono) {
          terms_.prefetch(mono);
          const M rest = Repr::without(mono, v);
          nm0 = bitmono_mul(rest, ms[0]);
          nm1 = bitmono_mul(rest, ms[1]);
          terms_.prefetch(nm0);
          terms_.prefetch(nm1);
          // The inserts append to the occurrence list of every substitutable
          // variable they mention; those lists scatter through a
          // multi-megabyte array, so warm them too. (The tail's own
          // variables go hot after the first term.)
          for (VarId w : rest)
            if (substitutable_[w]) __builtin_prefetch(&occurs_[w], 1, 1);
        };
        stage(pending[0]);
        for (std::size_t pi = 0; pi < np; ++pi) {
          M m0 = std::move(nm0);
          M m1 = std::move(nm1);
          const M& mono = pending[pi];
          const std::size_t b = occ_entry_bytes(mono);
          occ_bytes_ = occ_bytes_ > b ? occ_bytes_ - b : 0;
          // The find's slot line was prefetched an iteration ago; probe now,
          // issue the coefficient heap buffer's prefetch, and only then
          // stage the next term — by the time the coefficient is moved out
          // below, its line has had the staging work's latency to arrive.
          auto it = terms_.find(mono);
          const bool live = it != terms_.end();
          if (live) __builtin_prefetch(it->second.words().data(), 1, 1);
          if (pi + 1 < np) stage(pending[pi + 1]);
          if (!live) continue;  // cancelled since registration
          Gf2k::Elem coeff = std::move(it->second);
          spill_bytes_ -= Repr::mono_heap_bytes(it->first);
          terms_.erase(it);
          add(std::move(m0), coeff);
          add(std::move(m1), std::move(coeff));
        }
        return;
      }
    }
    // Generic serial path: erase, strip v, expand — one term at a time,
    // with the next term's find slot prefetched while the current expands.
    for (std::size_t pi = 0; pi < np; ++pi) {
      const M& mono = pending[pi];
      if constexpr (kPacked) {
        if (pi + 1 < np) terms_.prefetch(pending[pi + 1]);
        if ((pi & 255u) == 0)
          GFA_HISTOGRAM("rewriter.probe_len", terms_.probe_length(mono));
      }
      const std::size_t b = occ_entry_bytes(mono);
      occ_bytes_ = occ_bytes_ > b ? occ_bytes_ - b : 0;
      auto it = terms_.find(mono);
      if (it == terms_.end()) continue;  // cancelled since registration
      Gf2k::Elem coeff = std::move(it->second);
      spill_bytes_ -= Repr::mono_heap_bytes(it->first);
      terms_.erase(it);
      const M rest = Repr::without(mono, v);
      if constexpr (kFlat) {
        const auto& ms = tail.monos;
        for (std::size_t t = 0; t + 1 < ms.size(); ++t)
          add(bitmono_mul(rest, ms[t]), coeff);
        if (!ms.empty()) add(bitmono_mul(rest, ms.back()), std::move(coeff));
      } else {
        for (const auto& [tmono, tcoeff] : tail.terms()) {
          // Gate tails almost always carry coefficient 1 (AND/XOR/NOT
          // terms); skip the field multiply on that fast path.
          add(bitmono_mul(rest, tmono),
              tcoeff.is_one() ? coeff : field_.mul(coeff, tcoeff));
        }
      }
    }
    return;
  }

  // Chunked path. First detach every live affected term — pure hash work,
  // done serially. No expansion of a term containing v can produce another
  // term containing v (tails mention only fanin variables), so detaching all
  // of them up front is equivalent to the serial interleaving.
  std::vector<Affected> work;
  work.reserve(pending.size());
  [[maybe_unused]] std::size_t di = 0;
  for (const M& mono : pending) {
    if constexpr (kPacked) {
      // Large detach batches mean a large table — sample how long the open
      // addressing probe chains have grown (observability re-walk, off the
      // find itself).
      if ((di++ & 255u) == 0)
        GFA_HISTOGRAM("rewriter.probe_len", terms_.probe_length(mono));
    }
    const std::size_t b = occ_entry_bytes(mono);
    occ_bytes_ = occ_bytes_ > b ? occ_bytes_ - b : 0;
    auto it = terms_.find(mono);
    if (it == terms_.end()) continue;
    Affected a;
    a.coeff = it->second;
    a.rest = Repr::without(mono, v);
    spill_bytes_ -= Repr::mono_heap_bytes(it->first);
    terms_.erase(it);
    work.push_back(std::move(a));
  }
  if (work.size() < kChunkedSubstitutionMin) {
    // Stale index entries thinned the batch below the profitable size.
    for (Affected& a : work) {
      if constexpr (kFlat) {
        const auto& ms = tail.monos;
        for (std::size_t t = 0; t + 1 < ms.size(); ++t)
          add(bitmono_mul(a.rest, ms[t]), a.coeff);
        if (!ms.empty())
          add(bitmono_mul(a.rest, ms.back()), std::move(a.coeff));
      } else {
        for (const auto& [tmono, tcoeff] : tail.terms())
          add(bitmono_mul(a.rest, tmono),
              tcoeff.is_one() ? a.coeff : field_.mul(a.coeff, tcoeff));
      }
    }
    return;
  }
  expand_chunked(work, tail, width);
}

template <class M>
template <class TailT>
void BasicBackwardRewriter<M>::expand_chunked(const std::vector<Affected>& work,
                                              const TailT& tail,
                                              unsigned width) {
  const std::size_t shards =
      std::min<std::size_t>(width, work.size() / (kChunkedSubstitutionMin / 2));
  GFA_COUNT("rewriter.shards", shards);

  // Shard-local expansion: strided assignment, thread-private term maps,
  // per-shard budget leases, control polled inside the loop. Shard s's
  // content depends only on `work` and `tail`, never on the other shards.
  // The shard trace span opens *inside* the worker lambda so each span is
  // stamped with the pool thread that actually ran the shard — opened on the
  // caller, every shard would collapse into the dispatching thread's lane.
  std::vector<TermMap> local(shards);
  std::vector<std::optional<BudgetLease>> leases(shards);
  parallel_for(shards, [&](std::size_t s) {
    const obs::TraceSpan span("reduction_chain_shard", "abstraction");
    leases[s].emplace(budget_of(control_), BudgetSite::kRewriterTerms);
    TermMap& mine = local[s];
    std::size_t ops = 0;
    constexpr bool kFlat = std::is_same_v<TailT, FlatTail<M>>;
    auto accumulate = [&](M m, const Gf2k::Elem& c) {
      auto [it, inserted] = mine.try_emplace(std::move(m), c);
      if (!inserted) {
        it->second += c;
        if (it->second.is_zero()) mine.erase(it);
      }
      if ((++ops & 63u) == 0) {
        throw_if_stopped(control_);
        leases[s]->set_bytes(Repr::map_bytes(mine));
      }
    };
    for (std::size_t i = s; i < work.size(); i += shards) {
      const Affected& a = work[i];
      if constexpr (kFlat) {
        for (const M& tmono : tail.monos)
          accumulate(bitmono_mul(a.rest, tmono), a.coeff);
      } else {
        for (const auto& [tmono, tcoeff] : tail.terms())
          accumulate(bitmono_mul(a.rest, tmono),
                     tcoeff.is_one() ? a.coeff : field_.mul(a.coeff, tcoeff));
      }
    }
    leases[s]->set_bytes(Repr::map_bytes(mine));
  }, control_);

  // Deterministic merge: fixed shard order, XOR-combine through add() so the
  // occurrence index, fault point, and budget accounting see every term
  // exactly as the serial path would. Draining moves the monomials instead
  // of copying them. The shard lease is dropped only after its map has
  // drained into the main one (transiently double-counted — the safe
  // direction for a memory bound).
  std::size_t merge_terms = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    merge_terms += local[s].size();
    GFA_HISTOGRAM("rewriter.merge_shard_terms", local[s].size());
    drain_map<M>(local[s], [this](M m, Gf2k::Elem c) {
      add(std::move(m), std::move(c));
    });
    leases[s].reset();
  }
  GFA_COUNT("rewriter.merge_terms", merge_terms);
}

template <class M>
BasicShardedRewriter<M>::BasicShardedRewriter(const Gf2k& field,
                                              std::vector<bool> substitutable,
                                              unsigned shards,
                                              std::size_t max_terms,
                                              const ExecControl* control)
    : field_(field), max_terms_(max_terms), control_(control) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(
        field, s + 1 == shards ? std::move(substitutable) : substitutable,
        max_terms, control));
}

template <class M>
void BasicShardedRewriter<M>::seed(M mono, const Gf2k::Elem& coeff) {
  shards_[next_seed_ % shards_.size()]->add(std::move(mono), coeff);
  ++next_seed_;
}

template <class M>
void BasicShardedRewriter<M>::run_segment(const Netlist& netlist,
                                          const std::vector<NetId>& gates,
                                          std::size_t from, std::size_t to) {
  assert(to <= gates.size() && from <= to);
  const std::size_t n = shards_.size();
  const bool measured = obs::metrics_enabled();
  if (n == 1) {
    Shard& rw = *shards_[0];
    if constexpr (BitRepr<M>::kKind == PolyRepr::kPacked) {
      // Serial chain: one scratch tail reused across all gates (capacity
      // sticks, so steady-state tail construction is allocation-free), and
      // gates absent from the working polynomial skip tail construction
      // outright (substitution would be a no-op — the occurrence index only
      // over-approximates, never misses).
      GateTail<M> tail;
      for (std::size_t i = from; i < to; ++i) {
        throw_if_stopped(control_);
        if (i + 2 < to) rw.prefetch_occurrence_list(gates[i + 2]);
        if (i + 1 < to) rw.prefetch_pending(gates[i + 1]);
        if (rw.occurrences(gates[i]) == 0) continue;
        fill_gate_tail(field_, netlist.gate(gates[i]), tail);
        timed_substitute(measured && (i & 63u) == 0,
                         [&] { rw.substitute(gates[i], tail); });
      }
    } else {
      for (std::size_t i = from; i < to; ++i) {
        throw_if_stopped(control_);
        timed_substitute(measured && (i & 63u) == 0, [&] {
          rw.substitute(gates[i],
                        make_gate_tail<M>(field_, netlist.gate(gates[i])));
        });
      }
    }
    check_total_terms();
    return;
  }
  // Tail polynomials are shared read-only across the shards; building them
  // once (in parallel) instead of once per shard keeps the serial fraction
  // off the critical path. Blocks bound the tail buffer on million-gate
  // chains; the inter-block barriers are parallel_for dispatches (~µs) every
  // few thousand substitutions.
  constexpr std::size_t kTailBlock = 2048;
  std::vector<GateTail<M>> tails;
  for (std::size_t block = from; block < to; block += kTailBlock) {
    const std::size_t block_end = std::min(block + kTailBlock, to);
    if constexpr (BitRepr<M>::kKind == PolyRepr::kPacked)
      tails.assign(block_end - block, GateTail<M>{});
    else
      tails.assign(block_end - block, GateTail<M>(&field_));
    parallel_for(block_end - block, [&](std::size_t i) {
      tails[i] = make_gate_tail<M>(field_, netlist.gate(gates[block + i]));
    }, control_);
    parallel_for(n, [&](std::size_t s) {
      Shard& rw = *shards_[s];
      for (std::size_t i = block; i < block_end; ++i) {
        if (((i - block) & 255u) == 0) throw_if_stopped(control_);
        timed_substitute(measured && (i & 63u) == 0,
                         [&] { rw.substitute(gates[i], tails[i - block]); });
      }
    }, control_);
  }
  check_total_terms();
}

template <class M>
std::size_t BasicShardedRewriter<M>::num_terms() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->num_terms();
  return total;
}

template <class M>
std::size_t BasicShardedRewriter<M>::peak_terms() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->peak_terms();
  return total;
}

template <class M>
void BasicShardedRewriter<M>::check_total_terms() const {
  if (max_terms_ && num_terms() > max_terms_)
    throw RewriteBudgetExceeded("rewriting term budget exceeded");
}

template <class M>
typename BasicShardedRewriter<M>::TermMap BasicShardedRewriter<M>::merged()
    const {
  TermMap out = shards_[0]->terms();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    for (const auto& [m, c] : shards_[s]->terms()) {
      auto [it, inserted] = out.try_emplace(m, c);
      if (!inserted) {
        it->second += c;
        if (it->second.is_zero()) out.erase(it);
      }
    }
  }
  return out;
}

template <class M>
typename BasicShardedRewriter<M>::TermMap BasicShardedRewriter<M>::take_merged() {
  TermMap out = shards_[0]->take_terms();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    TermMap rest = shards_[s]->take_terms();
    drain_map<M>(rest, [&out](M m, Gf2k::Elem c) {
      auto [it, inserted] = out.try_emplace(std::move(m), c);
      if (!inserted) {
        it->second += c;
        if (it->second.is_zero()) out.erase(it);
      }
    });
  }
  return out;
}

template <class M>
BasicBitPoly<M> gate_tail_bitpoly_t(const Gf2k& field, const Netlist::Gate& g) {
  using Poly = BasicBitPoly<M>;
  Poly one = Poly::constant(&field, field.one());
  auto var = [&](NetId n) { return Poly::variable(&field, n); };
  switch (g.type) {
    case GateType::kConst0:
      return Poly(&field);
    case GateType::kConst1:
      return one;
    case GateType::kBuf:
      return var(g.fanins[0]);
    case GateType::kNot:
      return var(g.fanins[0]) + one;
    case GateType::kAnd:
    case GateType::kNand: {
      std::vector<VarId> ids(g.fanins.begin(), g.fanins.end());
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      Poly p(&field);
      p.add_term(BitRepr<M>::from_ids(std::move(ids)), field.one());
      return g.type == GateType::kNand ? p + one : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Poly p = one;
      for (NetId f : g.fanins) p = p * (var(f) + one);
      return g.type == GateType::kNor ? p : p + one;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Poly p(&field);
      for (NetId f : g.fanins) p += var(f);
      return g.type == GateType::kXnor ? p + one : p;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "inputs have no tail");
  return Poly(&field);
}

/// Packed-tier tail builder: monomials pushed straight into a flat vector
/// (coefficients are implicitly 1 — see FlatTail). Fanin ids are staged in a
/// stack buffer, so building a tail touches the heap only when the vector
/// outgrows its retained capacity or a monomial spills.
void fill_gate_tail(const Gf2k& field, const Netlist::Gate& g,
                    FlatTail<PackedMono>& tail) {
  (void)field;  // tails are field-independent; kept for signature symmetry
  auto& out = tail.monos;
  out.clear();
  constexpr std::size_t kStackIds = 16;
  VarId stack[kStackIds];
  std::vector<VarId> heap;
  VarId* ids = stack;
  std::size_t nid = g.fanins.size();
  if (nid > kStackIds) {
    heap.resize(nid);
    ids = heap.data();
  }
  for (std::size_t i = 0; i < nid; ++i) ids[i] = g.fanins[i];
  // Two-input gates dominate synthesized multipliers; skip the sort call.
  if (nid == 2) {
    if (ids[1] < ids[0]) std::swap(ids[0], ids[1]);
  } else if (nid > 2) {
    std::sort(ids, ids + nid);
  }
  switch (g.type) {
    case GateType::kConst0:
      return;
    case GateType::kConst1:
      out.push_back(PackedMono{});
      return;
    case GateType::kBuf:
      out.push_back(PackedMono::from_sorted(ids, 1));
      return;
    case GateType::kNot:
      out.push_back(PackedMono::from_sorted(ids, 1));
      out.push_back(PackedMono{});
      return;
    case GateType::kAnd:
    case GateType::kNand: {
      nid = std::unique(ids, ids + nid) - ids;
      out.push_back(PackedMono::from_sorted(ids, nid));
      if (g.type == GateType::kNand) out.push_back(PackedMono{});
      return;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // XOR is the field sum of its fanins; duplicated fanins cancel in
      // pairs (char 2), so keep each distinct id iff it occurs oddly often.
      for (std::size_t i = 0; i < nid;) {
        std::size_t j = i;
        while (j < nid && ids[j] == ids[i]) ++j;
        if ((j - i) & 1) out.push_back(PackedMono::from_sorted(ids + i, 1));
        i = j;
      }
      if (g.type == GateType::kXnor) out.push_back(PackedMono{});
      return;
    }
    case GateType::kOr:
    case GateType::kNor: {
      // prod(f_i + 1) over distinct fanins expands to one term per subset of
      // the id set; OR adds 1, cancelling the empty subset.
      nid = std::unique(ids, ids + nid) - ids;
      out.push_back(PackedMono{});
      for (std::size_t v = 0; v < nid; ++v) {
        const PackedMono m = PackedMono::from_sorted(ids + v, 1);
        const std::size_t sz = out.size();
        for (std::size_t i = 0; i < sz; ++i)
          out.push_back(packed_mono_mul(out[i], m));
      }
      if (g.type == GateType::kOr) out.erase(out.begin());  // the empty subset
      return;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "inputs have no tail");
}

template <>
FlatTail<PackedMono> make_gate_tail<PackedMono>(const Gf2k& field,
                                                const Netlist::Gate& g) {
  FlatTail<PackedMono> tail;
  fill_gate_tail(field, g, tail);
  return tail;
}

/// Legacy tier: tails stay hash-map polynomials, built exactly as before the
/// packed layer existed — the ablation baseline must not silently inherit
/// packed-tier optimizations.
template <>
LegacyBitPoly make_gate_tail<LegacyBitMono>(const Gf2k& field,
                                            const Netlist::Gate& g) {
  return gate_tail_bitpoly_t<LegacyBitMono>(field, g);
}

template class BasicBackwardRewriter<BitMono>;
template class BasicBackwardRewriter<LegacyBitMono>;
template class BasicShardedRewriter<BitMono>;
template class BasicShardedRewriter<LegacyBitMono>;

// The tail-shaped member templates reached through the inline substitute()
// overloads, instantiated explicitly so extern-template users always link.
template void BasicBackwardRewriter<BitMono>::substitute_impl(
    VarId, const BitPoly&);
template void BasicBackwardRewriter<BitMono>::substitute_impl(
    VarId, const FlatTail<BitMono>&);
template void BasicBackwardRewriter<LegacyBitMono>::substitute_impl(
    VarId, const LegacyBitPoly&);
template void BasicBackwardRewriter<LegacyBitMono>::substitute_impl(
    VarId, const FlatTail<LegacyBitMono>&);

template BitPoly gate_tail_bitpoly_t<BitMono>(const Gf2k&,
                                              const Netlist::Gate&);
template LegacyBitPoly gate_tail_bitpoly_t<LegacyBitMono>(
    const Gf2k&, const Netlist::Gate&);

}  // namespace gfa
