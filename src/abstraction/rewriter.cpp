#include "abstraction/rewriter.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa {

void BackwardRewriter::substitute(VarId v, const BitPoly& tail) {
  if (occurs_[v].empty()) return;  // cheap skip for sharded chains
  std::vector<BitMono> pending = std::move(occurs_[v]);
  occurs_[v] = {};
  for (const BitMono& dead : pending) {
    const std::size_t b = occ_entry_bytes(dead);
    occ_bytes_ = occ_bytes_ > b ? occ_bytes_ - b : 0;
  }

  const unsigned width =
      pending.size() < kChunkedSubstitutionMin ? 1 : parallel_available_width();
  if (width < 2) {
    // Serial path: erase, strip v, expand — one term at a time.
    for (BitMono& mono : pending) {
      auto it = terms_.find(mono);
      if (it == terms_.end()) continue;  // cancelled since registration
      const Gf2k::Elem coeff = it->second;
      terms_.erase(it);
      BitMono rest;
      rest.reserve(mono.size() - 1);
      for (VarId x : mono)
        if (x != v) rest.push_back(x);
      for (const auto& [tmono, tcoeff] : tail.terms()) {
        // Gate tails almost always carry coefficient 1 (AND/XOR/NOT terms);
        // skip the field multiply on that fast path.
        add(bitmono_mul(rest, tmono),
            tcoeff.is_one() ? coeff : field_.mul(coeff, tcoeff));
      }
    }
    return;
  }

  // Chunked path. First detach every live affected term — pure hash work,
  // done serially. No expansion of a term containing v can produce another
  // term containing v (tails mention only fanin variables), so detaching all
  // of them up front is equivalent to the serial interleaving.
  std::vector<Affected> work;
  work.reserve(pending.size());
  for (const BitMono& mono : pending) {
    auto it = terms_.find(mono);
    if (it == terms_.end()) continue;
    Affected a;
    a.coeff = it->second;
    a.rest.reserve(mono.size() - 1);
    for (VarId x : mono)
      if (x != v) a.rest.push_back(x);
    terms_.erase(it);
    work.push_back(std::move(a));
  }
  if (work.size() < kChunkedSubstitutionMin) {
    // Stale index entries thinned the batch below the profitable size.
    for (const Affected& a : work)
      for (const auto& [tmono, tcoeff] : tail.terms())
        add(bitmono_mul(a.rest, tmono),
            tcoeff.is_one() ? a.coeff : field_.mul(a.coeff, tcoeff));
    return;
  }
  expand_chunked(work, tail, width);
}

void BackwardRewriter::expand_chunked(const std::vector<Affected>& work,
                                      const BitPoly& tail, unsigned width) {
  const obs::TraceSpan span("reduction_chain_shard", "abstraction");
  const std::size_t shards =
      std::min<std::size_t>(width, work.size() / (kChunkedSubstitutionMin / 2));
  GFA_COUNT("rewriter.shards", shards);

  // Shard-local expansion: strided assignment, thread-private term maps,
  // per-shard budget leases, control polled inside the loop. Shard s's
  // content depends only on `work` and `tail`, never on the other shards.
  std::vector<BitPoly::TermMap> local(shards);
  std::vector<std::optional<BudgetLease>> leases(shards);
  parallel_for(shards, [&](std::size_t s) {
    leases[s].emplace(budget_of(control_), BudgetSite::kRewriterTerms);
    BitPoly::TermMap& mine = local[s];
    std::size_t ops = 0;
    for (std::size_t i = s; i < work.size(); i += shards) {
      const Affected& a = work[i];
      for (const auto& [tmono, tcoeff] : tail.terms()) {
        BitMono m = bitmono_mul(a.rest, tmono);
        const Gf2k::Elem c =
            tcoeff.is_one() ? a.coeff : field_.mul(a.coeff, tcoeff);
        auto [it, inserted] = mine.try_emplace(std::move(m), c);
        if (!inserted) {
          it->second += c;
          if (it->second.is_zero()) mine.erase(it);
        }
        if ((++ops & 63u) == 0) {
          throw_if_stopped(control_);
          leases[s]->set_bytes(mine.size() * kRewriterTermBytes);
        }
      }
    }
    leases[s]->set_bytes(mine.size() * kRewriterTermBytes);
  }, control_);

  // Deterministic merge: fixed shard order, XOR-combine through add() so the
  // occurrence index, fault point, and budget accounting see every term
  // exactly as the serial path would. Node extraction moves the monomials
  // instead of copying them. The shard lease is dropped only after its map
  // has drained into the main one (transiently double-counted — the safe
  // direction for a memory bound).
  std::size_t merge_terms = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    merge_terms += local[s].size();
    while (!local[s].empty()) {
      auto nh = local[s].extract(local[s].begin());
      add(std::move(nh.key()), nh.mapped());
    }
    leases[s].reset();
  }
  GFA_COUNT("rewriter.merge_terms", merge_terms);
}

ShardedRewriter::ShardedRewriter(const Gf2k& field,
                                 std::vector<bool> substitutable,
                                 unsigned shards, std::size_t max_terms,
                                 const ExecControl* control)
    : field_(field), max_terms_(max_terms), control_(control) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<BackwardRewriter>(
        field, s + 1 == shards ? std::move(substitutable) : substitutable,
        max_terms, control));
}

void ShardedRewriter::seed(BitMono mono, const Gf2k::Elem& coeff) {
  shards_[next_seed_ % shards_.size()]->add(std::move(mono), coeff);
  ++next_seed_;
}

void ShardedRewriter::run_segment(const Netlist& netlist,
                                  const std::vector<NetId>& gates,
                                  std::size_t from, std::size_t to) {
  assert(to <= gates.size() && from <= to);
  const std::size_t n = shards_.size();
  if (n == 1) {
    BackwardRewriter& rw = *shards_[0];
    for (std::size_t i = from; i < to; ++i) {
      throw_if_stopped(control_);
      rw.substitute(gates[i],
                    gate_tail_bitpoly(field_, netlist.gate(gates[i])));
    }
    return;
  }
  // Tail polynomials are shared read-only across the shards; building them
  // once (in parallel) instead of once per shard keeps the serial fraction
  // off the critical path. Blocks bound the tail buffer on million-gate
  // chains; the inter-block barriers are parallel_for dispatches (~µs) every
  // few thousand substitutions.
  constexpr std::size_t kTailBlock = 2048;
  std::vector<BitPoly> tails;
  for (std::size_t block = from; block < to; block += kTailBlock) {
    const std::size_t block_end = std::min(block + kTailBlock, to);
    tails.assign(block_end - block, BitPoly(&field_));
    parallel_for(block_end - block, [&](std::size_t i) {
      tails[i] = gate_tail_bitpoly(field_, netlist.gate(gates[block + i]));
    }, control_);
    parallel_for(n, [&](std::size_t s) {
      BackwardRewriter& rw = *shards_[s];
      for (std::size_t i = block; i < block_end; ++i) {
        if (((i - block) & 255u) == 0) throw_if_stopped(control_);
        rw.substitute(gates[i], tails[i - block]);
      }
    }, control_);
  }
  check_total_terms();
}

std::size_t ShardedRewriter::num_terms() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->num_terms();
  return total;
}

std::size_t ShardedRewriter::peak_terms() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->peak_terms();
  return total;
}

void ShardedRewriter::check_total_terms() const {
  if (max_terms_ && num_terms() > max_terms_)
    throw RewriteBudgetExceeded("rewriting term budget exceeded");
}

BitPoly::TermMap ShardedRewriter::merged() const {
  BitPoly::TermMap out = shards_[0]->terms();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    for (const auto& [m, c] : shards_[s]->terms()) {
      auto [it, inserted] = out.try_emplace(m, c);
      if (!inserted) {
        it->second += c;
        if (it->second.is_zero()) out.erase(it);
      }
    }
  }
  return out;
}

BitPoly::TermMap ShardedRewriter::take_merged() {
  BitPoly::TermMap out = shards_[0]->take_terms();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    BitPoly::TermMap rest = shards_[s]->take_terms();
    while (!rest.empty()) {
      auto nh = rest.extract(rest.begin());
      auto [it, inserted] = out.try_emplace(std::move(nh.key()), nh.mapped());
      if (!inserted) {
        it->second += nh.mapped();
        if (it->second.is_zero()) out.erase(it);
      }
    }
  }
  return out;
}

BitPoly gate_tail_bitpoly(const Gf2k& field, const Netlist::Gate& g) {
  BitPoly one = BitPoly::constant(&field, field.one());
  auto var = [&](NetId n) { return BitPoly::variable(&field, n); };
  switch (g.type) {
    case GateType::kConst0:
      return BitPoly(&field);
    case GateType::kConst1:
      return one;
    case GateType::kBuf:
      return var(g.fanins[0]);
    case GateType::kNot:
      return var(g.fanins[0]) + one;
    case GateType::kAnd:
    case GateType::kNand: {
      BitMono m(g.fanins.begin(), g.fanins.end());
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
      BitPoly p(&field);
      p.add_term(std::move(m), field.one());
      return g.type == GateType::kNand ? p + one : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      BitPoly p = one;
      for (NetId f : g.fanins) p = p * (var(f) + one);
      return g.type == GateType::kNor ? p : p + one;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      BitPoly p(&field);
      for (NetId f : g.fanins) p += var(f);
      return g.type == GateType::kXnor ? p + one : p;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "inputs have no tail");
  return BitPoly(&field);
}

}  // namespace gfa
