#include "abstraction/rewriter.h"

#include <algorithm>
#include <cassert>

namespace gfa {

BitPoly gate_tail_bitpoly(const Gf2k& field, const Netlist::Gate& g) {
  BitPoly one = BitPoly::constant(&field, field.one());
  auto var = [&](NetId n) { return BitPoly::variable(&field, n); };
  switch (g.type) {
    case GateType::kConst0:
      return BitPoly(&field);
    case GateType::kConst1:
      return one;
    case GateType::kBuf:
      return var(g.fanins[0]);
    case GateType::kNot:
      return var(g.fanins[0]) + one;
    case GateType::kAnd:
    case GateType::kNand: {
      BitMono m(g.fanins.begin(), g.fanins.end());
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
      BitPoly p(&field);
      p.add_term(std::move(m), field.one());
      return g.type == GateType::kNand ? p + one : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      BitPoly p = one;
      for (NetId f : g.fanins) p = p * (var(f) + one);
      return g.type == GateType::kNor ? p : p + one;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      BitPoly p(&field);
      for (NetId f : g.fanins) p += var(f);
      return g.type == GateType::kXnor ? p + one : p;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "inputs have no tail");
  return BitPoly(&field);
}

}  // namespace gfa
