#pragma once
// Canonical-form equivalence checking (the paper's verification problem).
//
// Both circuits are abstracted to their unique canonical polynomials
// F_1, F_2 over the word variables; equivalence is then coefficient matching
// (Corollary 4.1 makes the representation canonical, so matching is sound and
// complete). Non-equivalence is explained by the differing monomials — which
// by the paper's Example 5.1 is exactly the buggy circuit's polynomial.

#include <string>

#include "abstraction/extractor.h"
#include "circuit/netlist.h"

namespace gfa {

struct EquivalenceResult {
  bool equivalent = false;
  WordFunction spec;
  WordFunction impl;
  /// Empty when equivalent; otherwise a description of the first few
  /// monomials whose coefficients differ.
  std::string difference;
};

/// Compares two word functions (possibly over different pools) by input word
/// *names*. Returns true iff they denote the same polynomial function; when
/// `difference` is non-null it receives a diff description on mismatch.
bool same_word_function(const WordFunction& f1, const WordFunction& f2,
                        std::string* difference = nullptr);

/// Full flow: abstract both circuits over the field and match coefficients.
/// Circuit input word names must agree (e.g. both have A and B).
EquivalenceResult check_equivalence(const Netlist& spec, const Netlist& impl,
                                    const Gf2k& field,
                                    const ExtractionOptions& options = {});

/// Non-throwing variant with the same Status mapping as
/// try_extract_word_function (kInvalidArgument / kResourceExhausted /
/// kDeadlineExceeded / kCancelled).
Result<EquivalenceResult> try_check_equivalence(
    const Netlist& spec, const Netlist& impl, const Gf2k& field,
    const ExtractionOptions& options = {});

}  // namespace gfa
