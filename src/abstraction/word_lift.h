#pragma once
// Case-2 word-level lift (paper §5, step 3(b)).
//
// After the guided reduction, the remainder r contains only primary-input
// *bit* variables and word variables. The paper closes the gap by a reduced
// Gröbner basis of {r, word-input definitions} ∪ {vanishing polynomials}.
// Because the word-input polynomial f_wi : a_0 + a_1α + … + a_{k-1}α^{k-1} + A
// is linear in the bits, that Gröbner-basis step is exactly a linear basis
// change: applying Frobenius j times to f_wi gives A^{2^j} = Σ_i a_i·α^{i·2^j}
// (bits are F_2-valued, so a_i^{2^j} = a_i), i.e. the power vector
// (A, A², A⁴, …) is M·(a_0 … a_{k-1}) with M_{j,i} = α^{i·2^j}. M is
// invertible (both sides are bases of F_{2^k} as an F_2 space of functions),
// so  a_i = Σ_j C_{i,j}·A^{2^j}  with C = M^{-1}.
//
// Substituting this expansion into r and reducing exponents by X^q ≡ X yields
// the canonical word-level polynomial directly. A bilinear fast path handles
// the multiplier-shaped case (all monomials ≤ 2 bits) as matrix triple
// products Cᵀ·Q·C — O(k³) field multiplications instead of O(k⁴).

#include <vector>

#include "abstraction/bitpoly.h"
#include "poly/mpoly.h"
#include "util/exec_control.h"

namespace gfa {

class WordLift {
 public:
  using Elem = Gf2k::Elem;

  /// Precomputes C = M^{-1} for the field (O(k³) field operations). `basis`
  /// gives the word interpretation A = Σ a_i·basis[i]; by default the
  /// polynomial basis {α^i}. A normal basis (gf/normal_basis.h) plugs in here,
  /// which is what makes cross-representation equivalence checks work: M
  /// becomes M_{j,i} = basis[i]^{2^j} and everything downstream is unchanged.
  /// `control` bounds the O(k³) matrix inversion (checkpointed per pivot
  /// column and per pool chunk); expiry unwinds via StatusError.
  explicit WordLift(const Gf2k* field,
                    const std::vector<Elem>* basis = nullptr,
                    const ExecControl* control = nullptr);

  /// The word basis this lift was built for.
  const std::vector<Elem>& basis() const { return basis_; }

  /// The expansion matrix: bit i of a word W satisfies
  /// w_i = Σ_j matrix()[i][j] · W^{2^j}.
  const std::vector<std::vector<Elem>>& matrix() const { return c_; }

  /// Binds the bit variables (LSB-first, exactly k of them) of one input word
  /// to its word variable.
  struct WordBinding {
    VarId word_var;
    std::vector<VarId> bit_vars;
  };

  /// Lifts a multilinear polynomial over bound input bits into the canonical
  /// polynomial over the word variables. Every bit variable occurring in `r`
  /// must be bound. `pool` supplies variable kinds for vanishing reduction.
  MPoly lift(const BitPoly& r, const std::vector<WordBinding>& words,
             const VarPool& pool, const ExecControl* control = nullptr) const;

 private:
  MPoly lift_bilinear(const BitPoly& r, const std::vector<WordBinding>& words,
                      const VarPool& pool, const ExecControl* control) const;
  MPoly lift_general(const BitPoly& r, const std::vector<WordBinding>& words,
                     const VarPool& pool, const ExecControl* control) const;

  const Gf2k* field_;
  std::vector<Elem> basis_;
  std::vector<std::vector<Elem>> c_;  // k×k inverse basis-change matrix
};

}  // namespace gfa
