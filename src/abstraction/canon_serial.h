#pragma once
// Serialization of extracted canonical forms (WordFunction) for the
// verification service's content-addressed cache.
//
// A cached entry is the word-level polynomial Z = G(A, B, …) the extractor
// produced — exactly what same_word_function() compares — reduced to what
// that comparison needs: the output word name, the input word names, and the
// terms of G keyed by input-word monomials. Bit variables, stats, and pool
// ids are *not* persisted: ids are reassigned on decode (comparison is by
// name, see abstraction/equivalence.h), so an entry round-trips into a
// minimal pool containing only the input words.
//
// The payload is JSON (the repository's only wire format). Coefficients and
// exponents are little-endian u64 word vectors rendered as hex strings, NOT
// JSON numbers: the JSON reader holds numbers as double, which silently
// loses integer precision past 2^53 — fatal for k > 53 exponents, which
// reach 2^k - 1.
//
// decode_canon_form() is strict: an unknown version, a variable outside the
// declared input words, a malformed hex string, or a coefficient of degree
// >= k all fail with kInvalidArgument. The cache treats any decode failure
// like a CRC mismatch — drop the entry and recompute — so a damaged or
// stale-format entry can cost time, never a wrong verdict.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "abstraction/extractor.h"
#include "gf/gf2k.h"
#include "util/status.h"

namespace gfa {

/// Bumped whenever the payload schema changes; decode rejects other versions.
inline constexpr std::uint32_t kCanonFormVersion = 1;

/// Little-endian u64 words -> lowercase hex (most significant nibble first,
/// no leading zeros, "0" for the empty/zero vector).
std::string hex_of_words(const std::vector<std::uint64_t>& words);

/// Inverse of hex_of_words(); kInvalidArgument on non-hex characters or an
/// empty string.
Result<std::vector<std::uint64_t>> words_of_hex(std::string_view hex);

/// Compact JSON payload for one canonical form.
std::string encode_canon_form(const WordFunction& fn);

/// Rebuilds a WordFunction over `field` from an encode_canon_form() payload.
/// The returned pool contains exactly the input words (interned as kWord);
/// stats are default (the cache never replays extraction cost).
Result<WordFunction> decode_canon_form(std::string_view json,
                                       const Gf2k& field);

}  // namespace gfa
