#include "abstraction/equivalence.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>

#include "abstraction/word_lift.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa {

namespace {

/// Term count above which the coefficient-wise comparison work (remapping,
/// equality) fans out across the pool. Multiplier canonical forms are tiny
/// (G = A·B is one term) but ECC point formulas and fault shapes are not.
constexpr std::size_t kParallelMatchMin = 1024;

/// Remaps f.g's word variables into `target` ids by name. Returns false if
/// some word of f has no counterpart.
bool remap_into(const WordFunction& f, const VarPool& target, MPoly* out) {
  std::map<VarId, VarId> vmap;
  for (const std::string& w : f.input_words) {
    if (!target.contains(w)) return false;
    vmap.emplace(f.pool.id(w), target.id(w));
  }
  std::vector<const std::pair<const Monomial, Gf2k::Elem>*> terms;
  terms.reserve(f.g.num_terms());
  for (const auto& term : f.g.terms()) terms.push_back(&term);
  // Each term remaps independently; above the threshold the terms are
  // strided over the pool into chunk-private polynomials merged in fixed
  // chunk order (addition never collides — remapping is injective on
  // monomials — so this equals the serial accumulation).
  const std::size_t chunks =
      terms.size() >= kParallelMatchMin
          ? std::min<std::size_t>(parallel_available_width(), terms.size())
          : 1;
  std::vector<MPoly> partial(chunks, MPoly(&f.g.field()));
  std::atomic<bool> unbound{false};
  parallel_for(chunks, [&](std::size_t chunk) {
    MPoly local(&f.g.field());
    for (std::size_t i = chunk; i < terms.size(); i += chunks) {
      const auto& [mono, coeff] = *terms[i];
      std::vector<std::pair<VarId, BigUint>> pairs;
      pairs.reserve(mono.factors().size());
      for (const auto& [v, e] : mono.factors()) {
        auto it = vmap.find(v);
        if (it == vmap.end()) {
          unbound.store(true, std::memory_order_relaxed);
          return;
        }
        pairs.emplace_back(it->second, e);
      }
      local.add_term(Monomial::from_pairs(std::move(pairs)), coeff);
    }
    partial[chunk] = std::move(local);
  });
  if (unbound.load(std::memory_order_relaxed)) return false;
  *out = MPoly(&f.g.field());
  for (MPoly& p : partial) *out += p;
  return true;
}

/// Coefficient-wise equality; large polynomials compare chunk-parallel.
/// Both term lists come from std::map iteration, so index i holds the same
/// rank monomial on both sides and chunks are independent.
bool mpoly_equal(const MPoly& g1, const MPoly& g2) {
  if (g1.num_terms() != g2.num_terms()) return false;
  if (g1.num_terms() < kParallelMatchMin) return g1 == g2;
  std::vector<const std::pair<const Monomial, Gf2k::Elem>*> t1, t2;
  t1.reserve(g1.num_terms());
  t2.reserve(g2.num_terms());
  for (const auto& t : g1.terms()) t1.push_back(&t);
  for (const auto& t : g2.terms()) t2.push_back(&t);
  const std::size_t chunks =
      std::min<std::size_t>(parallel_available_width(), t1.size());
  std::atomic<bool> differ{false};
  parallel_for(chunks, [&](std::size_t chunk) {
    for (std::size_t i = chunk; i < t1.size(); i += chunks) {
      if (differ.load(std::memory_order_relaxed)) return;
      if (t1[i]->first != t2[i]->first || t1[i]->second != t2[i]->second) {
        differ.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  return !differ.load(std::memory_order_relaxed);
}

std::string describe_difference(const Gf2k& field, const VarPool& pool,
                                const MPoly& g1, const MPoly& g2) {
  MPoly diff = g1 + g2;  // char 2: the symmetric difference of coefficients
  std::string out = "coefficients differ on " +
                    std::to_string(diff.num_terms()) + " monomial(s): ";
  std::size_t shown = 0;
  for (const auto& [mono, c] : diff.terms()) {
    if (shown++ == 4) {
      out += "…";
      break;
    }
    if (shown > 1) out += ", ";
    out += mono.to_string(pool) + " [spec " + field.to_string(g1.coeff(mono)) +
           " vs impl " + field.to_string(g2.coeff(mono)) + "]";
  }
  return out;
}

}  // namespace

bool same_word_function(const WordFunction& f1, const WordFunction& f2,
                        std::string* difference) {
  std::vector<std::string> w1 = f1.input_words, w2 = f2.input_words;
  std::sort(w1.begin(), w1.end());
  std::sort(w2.begin(), w2.end());
  if (w1 != w2) {
    if (difference) *difference = "input word names differ";
    return false;
  }
  MPoly g2(&f2.g.field());
  if (!remap_into(f2, f1.pool, &g2)) {
    if (difference) *difference = "input word names differ";
    return false;
  }
  if (mpoly_equal(f1.g, g2)) return true;
  if (difference)
    *difference = describe_difference(f1.g.field(), f1.pool, f1.g, g2);
  return false;
}

EquivalenceResult check_equivalence(const Netlist& spec, const Netlist& impl,
                                    const Gf2k& field,
                                    const ExtractionOptions& options) {
  // Build the O(k³) Frobenius basis change once for both circuits, then
  // abstract spec and impl one after the other. Each extraction parallelizes
  // internally at full pool width (sharded reduction chain, lift
  // transforms); running the two concurrently instead would serialize all of
  // that — parallel_invoke marks both callers as pool work, so every nested
  // loop degrades — and caps the speedup at 2.
  ExtractionOptions local = options;
  std::optional<WordLift> owned_lift;
  if (local.shared_lift == nullptr) {
    owned_lift.emplace(&field, local.basis, local.control);
    local.shared_lift = &*owned_lift;
  }
  WordFunction spec_fn = extract_word_function(spec, field, local);
  WordFunction impl_fn = extract_word_function(impl, field, local);
  GFA_COUNT("equivalence.checks", 1);
  const obs::TraceSpan match_span("coefficient_match", "abstraction");
  std::string diff;
  const bool eq = same_word_function(spec_fn, impl_fn, &diff);
  return EquivalenceResult{eq, std::move(spec_fn), std::move(impl_fn),
                           std::move(diff)};
}

Result<EquivalenceResult> try_check_equivalence(
    const Netlist& spec, const Netlist& impl, const Gf2k& field,
    const ExtractionOptions& options) {
  try {
    return check_equivalence(spec, impl, field, options);
  } catch (const ExtractionBudgetExceeded& e) {
    return Status::resource_exhausted(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
