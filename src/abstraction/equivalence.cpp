#include "abstraction/equivalence.h"

#include <algorithm>
#include <map>
#include <optional>

#include "abstraction/word_lift.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa {

namespace {

/// Remaps f.g's word variables into `target` ids by name. Returns false if
/// some word of f has no counterpart.
bool remap_into(const WordFunction& f, const VarPool& target, MPoly* out) {
  std::map<VarId, VarId> vmap;
  for (const std::string& w : f.input_words) {
    if (!target.contains(w)) return false;
    vmap.emplace(f.pool.id(w), target.id(w));
  }
  *out = MPoly(&f.g.field());
  for (const auto& [mono, coeff] : f.g.terms()) {
    std::vector<std::pair<VarId, BigUint>> pairs;
    pairs.reserve(mono.factors().size());
    for (const auto& [v, e] : mono.factors()) {
      auto it = vmap.find(v);
      if (it == vmap.end()) return false;
      pairs.emplace_back(it->second, e);
    }
    out->add_term(Monomial::from_pairs(std::move(pairs)), coeff);
  }
  return true;
}

std::string describe_difference(const Gf2k& field, const VarPool& pool,
                                const MPoly& g1, const MPoly& g2) {
  MPoly diff = g1 + g2;  // char 2: the symmetric difference of coefficients
  std::string out = "coefficients differ on " +
                    std::to_string(diff.num_terms()) + " monomial(s): ";
  std::size_t shown = 0;
  for (const auto& [mono, c] : diff.terms()) {
    if (shown++ == 4) {
      out += "…";
      break;
    }
    if (shown > 1) out += ", ";
    out += mono.to_string(pool) + " [spec " + field.to_string(g1.coeff(mono)) +
           " vs impl " + field.to_string(g2.coeff(mono)) + "]";
  }
  return out;
}

}  // namespace

bool same_word_function(const WordFunction& f1, const WordFunction& f2,
                        std::string* difference) {
  std::vector<std::string> w1 = f1.input_words, w2 = f2.input_words;
  std::sort(w1.begin(), w1.end());
  std::sort(w2.begin(), w2.end());
  if (w1 != w2) {
    if (difference) *difference = "input word names differ";
    return false;
  }
  MPoly g2(&f2.g.field());
  if (!remap_into(f2, f1.pool, &g2)) {
    if (difference) *difference = "input word names differ";
    return false;
  }
  if (f1.g == g2) return true;
  if (difference)
    *difference = describe_difference(f1.g.field(), f1.pool, f1.g, g2);
  return false;
}

EquivalenceResult check_equivalence(const Netlist& spec, const Netlist& impl,
                                    const Gf2k& field,
                                    const ExtractionOptions& options) {
  // Build the O(k³) Frobenius basis change once for both circuits, then
  // abstract spec and impl concurrently.
  ExtractionOptions local = options;
  std::optional<WordLift> owned_lift;
  if (local.shared_lift == nullptr) {
    owned_lift.emplace(&field, local.basis, local.control);
    local.shared_lift = &*owned_lift;
  }
  WordFunction spec_fn, impl_fn;
  parallel_invoke(
      [&] { spec_fn = extract_word_function(spec, field, local); },
      [&] { impl_fn = extract_word_function(impl, field, local); },
      local.control);
  GFA_COUNT("equivalence.checks", 1);
  const obs::TraceSpan match_span("coefficient_match", "abstraction");
  std::string diff;
  const bool eq = same_word_function(spec_fn, impl_fn, &diff);
  return EquivalenceResult{eq, std::move(spec_fn), std::move(impl_fn),
                           std::move(diff)};
}

Result<EquivalenceResult> try_check_equivalence(
    const Netlist& spec, const Netlist& impl, const Gf2k& field,
    const ExtractionOptions& options) {
  try {
    return check_equivalence(spec, impl, field, options);
  } catch (const ExtractionBudgetExceeded& e) {
    return Status::resource_exhausted(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
