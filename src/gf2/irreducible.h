#pragma once
// Irreducible polynomials over GF(2): testing, lookup, and search.
//
// F_{2^k} is constructed as GF(2)[x] / P(x) for an irreducible P(x) of degree
// k. This module provides:
//   * Rabin's irreducibility test,
//   * the NIST FIPS 186 ECC reduction polynomials (k = 163/233/283/409/571),
//   * a default irreducible polynomial for any k >= 2, found by searching
//     low-weight candidates (trinomials, then pentanomials) and verified with
//     the Rabin test.

#include <optional>

#include "gf2/gf2_poly.h"

namespace gfa {

/// True iff `f` is irreducible over GF(2) (degree >= 1; degree-1 polynomials
/// are irreducible by definition).
bool is_irreducible(const Gf2Poly& f);

/// The NIST-recommended reduction polynomial for F_{2^k} used in ECC, if k is
/// one of {163, 233, 283, 409, 571}.
std::optional<Gf2Poly> nist_polynomial(unsigned k);

/// An irreducible polynomial of degree k (k >= 2). Uses the NIST polynomial
/// when available, otherwise the lowest-weight irreducible found by search.
/// The result is deterministic for a given k.
Gf2Poly default_irreducible(unsigned k);

/// Search for an irreducible trinomial x^k + x^a + 1 (smallest a), then for a
/// pentanomial x^k + x^a + x^b + x^c + 1 (lexicographically smallest a>b>c).
/// Every k >= 2 of practical interest has one of the two.
std::optional<Gf2Poly> find_low_weight_irreducible(unsigned k);

}  // namespace gfa
