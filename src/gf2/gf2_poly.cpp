#include "gf2/gf2_poly.h"

#include <bit>
#include <cassert>
#include <utility>

namespace gfa {

namespace {
constexpr unsigned kWordBits = 64;
}  // namespace

void Gf2Poly::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

Gf2Poly Gf2Poly::from_bits(std::uint64_t bits) {
  Gf2Poly p;
  if (bits != 0) p.words_.push_back(bits);
  return p;
}

Gf2Poly Gf2Poly::from_words(const std::uint64_t* words, std::size_t n) {
  Gf2Poly p;
  p.words_.assign(words, words + n);
  p.trim();
  return p;
}

Gf2Poly Gf2Poly::from_exponents(std::initializer_list<unsigned> exps) {
  Gf2Poly p;
  for (unsigned e : exps) p.set_coeff(e, !p.coeff(e));
  return p;
}

Gf2Poly Gf2Poly::from_exponents(const std::vector<unsigned>& exps) {
  Gf2Poly p;
  for (unsigned e : exps) p.set_coeff(e, !p.coeff(e));
  return p;
}

Gf2Poly Gf2Poly::monomial(unsigned e) {
  Gf2Poly p;
  p.set_coeff(e, true);
  return p;
}

int Gf2Poly::degree() const {
  if (words_.empty()) return -1;
  const std::uint64_t top = words_.back();
  return static_cast<int>((words_.size() - 1) * kWordBits +
                          (kWordBits - 1 - std::countl_zero(top)));
}

bool Gf2Poly::coeff(unsigned i) const {
  const std::size_t w = i / kWordBits;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i % kWordBits)) & 1u;
}

void Gf2Poly::set_coeff(unsigned i, bool value) {
  const std::size_t w = i / kWordBits;
  if (value) {
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= std::uint64_t{1} << (i % kWordBits);
  } else {
    if (w < words_.size()) {
      words_[w] &= ~(std::uint64_t{1} << (i % kWordBits));
      trim();
    }
  }
}

int Gf2Poly::weight() const {
  int n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

Gf2Poly Gf2Poly::operator+(const Gf2Poly& rhs) const {
  Gf2Poly out = *this;
  out += rhs;
  return out;
}

Gf2Poly& Gf2Poly::operator+=(const Gf2Poly& rhs) {
  if (rhs.words_.size() > words_.size()) words_.resize(rhs.words_.size(), 0);
  for (std::size_t i = 0; i < rhs.words_.size(); ++i) words_[i] ^= rhs.words_[i];
  trim();
  return *this;
}

Gf2Poly Gf2Poly::shifted_up(unsigned n) const {
  if (is_zero() || n == 0) {
    Gf2Poly out = *this;
    return out;
  }
  const unsigned word_shift = n / kWordBits;
  const unsigned bit_shift = n % kWordBits;
  Gf2Poly out;
  out.words_.assign(words_.size() + word_shift + 1, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i + word_shift] |= bit_shift ? (words_[i] << bit_shift) : words_[i];
    if (bit_shift != 0)
      out.words_[i + word_shift + 1] |= words_[i] >> (kWordBits - bit_shift);
  }
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::operator*(const Gf2Poly& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  // Schoolbook carry-less multiply, word-by-word with 4-bit windowing on the
  // left operand to amortize shifts.
  const std::vector<std::uint64_t>& a = words_;
  const std::vector<std::uint64_t>& b = rhs.words_;
  Gf2Poly out;
  out.words_.assign(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ai = a[i];
    while (ai != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(ai));
      ai &= ai - 1;
      // XOR b << (64*i + bit) into out.
      for (std::size_t j = 0; j < b.size(); ++j) {
        const std::uint64_t w = b[j];
        out.words_[i + j] ^= bit ? (w << bit) : w;
        if (bit != 0) out.words_[i + j + 1] ^= w >> (kWordBits - bit);
      }
    }
  }
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::squared() const {
  // Spread each bit to the even positions: (sum a_i x^i)^2 = sum a_i x^{2i}.
  auto spread32 = [](std::uint32_t v) {
    std::uint64_t x = v;
    x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
    x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
    x = (x | (x << 2)) & 0x3333333333333333ull;
    x = (x | (x << 1)) & 0x5555555555555555ull;
    return x;
  };
  Gf2Poly out;
  out.words_.assign(words_.size() * 2, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[2 * i] = spread32(static_cast<std::uint32_t>(words_[i]));
    out.words_[2 * i + 1] = spread32(static_cast<std::uint32_t>(words_[i] >> 32));
  }
  out.trim();
  return out;
}

Gf2Poly::DivMod Gf2Poly::divmod(const Gf2Poly& divisor) const {
  assert(!divisor.is_zero() && "division by zero polynomial");
  DivMod dm;
  dm.remainder = *this;
  const int dd = divisor.degree();
  int rd = dm.remainder.degree();
  while (rd >= dd) {
    const unsigned shift = static_cast<unsigned>(rd - dd);
    dm.quotient.set_coeff(shift, true);
    dm.remainder += divisor.shifted_up(shift);
    rd = dm.remainder.degree();
  }
  return dm;
}

Gf2Poly Gf2Poly::mod(const Gf2Poly& divisor) const {
  assert(!divisor.is_zero() && "division by zero polynomial");
  Gf2Poly r = *this;
  const int dd = divisor.degree();
  int rd = r.degree();
  while (rd >= dd) {
    r += divisor.shifted_up(static_cast<unsigned>(rd - dd));
    rd = r.degree();
  }
  return r;
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
  while (!b.is_zero()) {
    Gf2Poly r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Gf2Poly::ExtGcd Gf2Poly::ext_gcd(const Gf2Poly& a, const Gf2Poly& b) {
  // Iterative extended Euclid; all arithmetic is char-2 so signs vanish.
  Gf2Poly r0 = a, r1 = b;
  Gf2Poly s0 = Gf2Poly::one(), s1;
  Gf2Poly t0, t1 = Gf2Poly::one();
  while (!r1.is_zero()) {
    DivMod dm = r0.divmod(r1);
    Gf2Poly r2 = dm.remainder;
    Gf2Poly s2 = s0 + dm.quotient * s1;
    Gf2Poly t2 = t0 + dm.quotient * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s1 = std::move(s2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  return {r0, s0, t0};
}

Gf2Poly Gf2Poly::mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& m) {
  return (a * b).mod(m);
}

Gf2Poly Gf2Poly::frobenius_pow(Gf2Poly a, unsigned n, const Gf2Poly& m) {
  a = a.mod(m);
  for (unsigned i = 0; i < n; ++i) a = a.squared().mod(m);
  return a;
}

std::string Gf2Poly::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  for (int i = degree(); i >= 0; --i) {
    if (!coeff(static_cast<unsigned>(i))) continue;
    if (!out.empty()) out += " + ";
    if (i == 0)
      out += "1";
    else if (i == 1)
      out += "x";
    else
      out += "x^" + std::to_string(i);
  }
  return out;
}

std::size_t Gf2Poly::hash() const {
  // FNV-1a over the packed words.
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace gfa
