#include "gf2/irreducible.h"

#include <cassert>
#include <vector>

namespace gfa {

namespace {

std::vector<unsigned> prime_factors(unsigned n) {
  std::vector<unsigned> out;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

}  // namespace

bool is_irreducible(const Gf2Poly& f) {
  const int deg = f.degree();
  if (deg < 1) return false;
  if (deg == 1) return true;
  // A polynomial with zero constant term is divisible by x.
  if (!f.coeff(0)) return false;
  const unsigned n = static_cast<unsigned>(deg);
  const Gf2Poly x = Gf2Poly::monomial(1);

  // Rabin: f irreducible <=> x^(2^n) == x (mod f), and for every prime p | n,
  // gcd(x^(2^(n/p)) - x, f) == 1. Subtraction is XOR over GF(2).
  for (unsigned p : prime_factors(n)) {
    const Gf2Poly xp = Gf2Poly::frobenius_pow(x, n / p, f);
    if (!Gf2Poly::gcd(xp + x, f).is_one()) return false;
  }
  return Gf2Poly::frobenius_pow(x, n, f) == x.mod(f);
}

std::optional<Gf2Poly> nist_polynomial(unsigned k) {
  switch (k) {
    case 163:
      return Gf2Poly::from_exponents({163, 7, 6, 3, 0});
    case 233:
      return Gf2Poly::from_exponents({233, 74, 0});
    case 283:
      return Gf2Poly::from_exponents({283, 12, 7, 5, 0});
    case 409:
      return Gf2Poly::from_exponents({409, 87, 0});
    case 571:
      return Gf2Poly::from_exponents({571, 10, 5, 2, 0});
    default:
      return std::nullopt;
  }
}

std::optional<Gf2Poly> find_low_weight_irreducible(unsigned k) {
  assert(k >= 2);
  // Trinomials x^k + x^a + 1.
  for (unsigned a = 1; a < k; ++a) {
    Gf2Poly f = Gf2Poly::from_exponents({k, a, 0});
    if (is_irreducible(f)) return f;
  }
  // Pentanomials x^k + x^a + x^b + x^c + 1.
  for (unsigned a = 3; a < k; ++a)
    for (unsigned b = 2; b < a; ++b)
      for (unsigned c = 1; c < b; ++c) {
        Gf2Poly f = Gf2Poly::from_exponents({k, a, b, c, 0});
        if (is_irreducible(f)) return f;
      }
  return std::nullopt;
}

Gf2Poly default_irreducible(unsigned k) {
  assert(k >= 2);
  if (auto nist = nist_polynomial(k)) return *nist;
  auto found = find_low_weight_irreducible(k);
  assert(found.has_value() && "no low-weight irreducible found");
  return *found;
}

}  // namespace gfa
