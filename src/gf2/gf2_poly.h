#pragma once
// Dense polynomials over GF(2), stored as packed bit vectors.
//
// A Gf2Poly represents an element of GF(2)[x]. Bit i of the packed storage is
// the coefficient of x^i. This is the substrate on which the extension fields
// F_{2^k} (src/gf/gf2k.h) are constructed: field elements are residues of
// GF(2)[x] modulo an irreducible polynomial P(x) of degree k.
//
// The representation is canonical: the top word never carries bits above
// degree(), and the zero polynomial has empty storage. All arithmetic keeps
// this invariant, so operator== is a plain vector compare.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gfa {

class Gf2Poly {
 public:
  /// The zero polynomial.
  Gf2Poly() = default;

  /// Polynomial whose coefficient bits are the bits of `bits` (bit i -> x^i).
  static Gf2Poly from_bits(std::uint64_t bits);

  /// Polynomial from `n` packed little-endian words (bit i of word j is the
  /// coefficient of x^(64j+i)); trailing zero words are trimmed.
  static Gf2Poly from_words(const std::uint64_t* words, std::size_t n);

  /// Polynomial with 1-coefficients exactly at the listed exponents.
  /// Duplicate exponents cancel in pairs (GF(2) addition).
  static Gf2Poly from_exponents(std::initializer_list<unsigned> exps);
  static Gf2Poly from_exponents(const std::vector<unsigned>& exps);

  /// The monomial x^e.
  static Gf2Poly monomial(unsigned e);

  /// Constant 1.
  static Gf2Poly one() { return from_bits(1); }

  /// Degree of the polynomial; -1 for the zero polynomial.
  int degree() const;

  bool is_zero() const { return words_.empty(); }
  bool is_one() const { return words_.size() == 1 && words_[0] == 1; }

  /// Coefficient of x^i (0 or 1). Out-of-range exponents read as 0.
  bool coeff(unsigned i) const;

  /// Set the coefficient of x^i.
  void set_coeff(unsigned i, bool value);

  /// Number of nonzero coefficients.
  int weight() const;

  /// Addition and subtraction coincide over GF(2): coefficient-wise XOR.
  Gf2Poly operator+(const Gf2Poly& rhs) const;
  Gf2Poly& operator+=(const Gf2Poly& rhs);

  /// Carry-less (schoolbook) product.
  Gf2Poly operator*(const Gf2Poly& rhs) const;

  /// x^2-substitution: returns p(x)^2, i.e. coefficients spread to even slots.
  Gf2Poly squared() const;

  /// Multiply by x^n (left shift of the coefficient vector).
  Gf2Poly shifted_up(unsigned n) const;

  /// Quotient and remainder of polynomial division by `divisor` (non-zero).
  struct DivMod;  // defined after the class (holds Gf2Poly values)
  DivMod divmod(const Gf2Poly& divisor) const;

  /// Remainder modulo `divisor`.
  Gf2Poly mod(const Gf2Poly& divisor) const;

  /// Greatest common divisor (monic by construction over GF(2)).
  static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);

  /// Extended gcd: returns g = gcd(a, b) and s, t with s*a + t*b = g.
  struct ExtGcd;  // defined after the class
  static ExtGcd ext_gcd(const Gf2Poly& a, const Gf2Poly& b);

  /// (a * b) mod m, for m of degree >= 1.
  static Gf2Poly mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& m);

  /// a^(2^n) mod m via iterated squaring (Frobenius power).
  static Gf2Poly frobenius_pow(Gf2Poly a, unsigned n, const Gf2Poly& m);

  bool operator==(const Gf2Poly& rhs) const = default;

  /// Human-readable form, e.g. "x^3 + x + 1"; "0" for the zero polynomial.
  std::string to_string() const;

  /// Raw packed words (bit i of word j is the coefficient of x^(64j+i)).
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Hash suitable for unordered containers.
  std::size_t hash() const;

 private:
  void trim();
  std::vector<std::uint64_t> words_;
};

struct Gf2Poly::DivMod {
  Gf2Poly quotient;
  Gf2Poly remainder;
};

struct Gf2Poly::ExtGcd {
  Gf2Poly g;
  Gf2Poly s;
  Gf2Poly t;
};

}  // namespace gfa
