#include "circuit/netlist.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gfa {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kXor: return "xor";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXnor: return "xnor";
  }
  return "?";
}

std::optional<GateType> gate_type_from_name(std::string_view name) {
  static constexpr std::pair<std::string_view, GateType> kTable[] = {
      {"input", GateType::kInput}, {"const0", GateType::kConst0},
      {"const1", GateType::kConst1}, {"buf", GateType::kBuf},
      {"not", GateType::kNot},     {"and", GateType::kAnd},
      {"or", GateType::kOr},       {"xor", GateType::kXor},
      {"nand", GateType::kNand},   {"nor", GateType::kNor},
      {"xnor", GateType::kXnor},
  };
  for (const auto& [n, t] : kTable)
    if (n == name) return t;
  return std::nullopt;
}

NetId Netlist::new_net(GateType type, std::vector<NetId> fanins,
                       std::string_view name) {
  const NetId id = static_cast<NetId>(gates_.size());
  std::string net_name =
      name.empty() ? "n" + std::to_string(id) : std::string(name);
  assert(by_name_.find(net_name) == by_name_.end() && "duplicate net name");
  by_name_.emplace(net_name, id);
  gates_.push_back(Gate{type, std::move(fanins), std::move(net_name)});
  return id;
}

NetId Netlist::add_input(std::string_view name) {
  const NetId id = new_net(GateType::kInput, {}, name);
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_gate(GateType type, const std::vector<NetId>& fanins,
                        std::string_view name) {
  assert(type != GateType::kInput && "use add_input");
  for (NetId f : fanins) assert(f < gates_.size() && "fanin does not exist");
  return new_net(type, fanins, name);
}

NetId Netlist::add_const(bool value, std::string_view name) {
  return new_net(value ? GateType::kConst1 : GateType::kConst0, {}, name);
}

void Netlist::mark_output(NetId net) {
  assert(net < gates_.size());
  outputs_.push_back(net);
}

std::size_t Netlist::num_logic_gates() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.type != GateType::kInput && g.type != GateType::kConst0 &&
        g.type != GateType::kConst1)
      ++n;
  }
  return n;
}

NetId Netlist::find_net(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoNet : it->second;
}

void Netlist::declare_word(std::string_view name, std::vector<NetId> bits) {
  for (NetId b : bits) assert(b < gates_.size());
  words_.push_back(Word{std::string(name), std::move(bits)});
}

const Word* Netlist::find_word(std::string_view name) const {
  for (const Word& w : words_)
    if (w.name == name) return &w;
  return nullptr;
}

std::vector<NetId> Netlist::topological_order() const {
  // Kahn's algorithm over the fanin relation.
  std::vector<unsigned> pending(gates_.size(), 0);
  std::vector<std::vector<NetId>> fanouts(gates_.size());
  for (NetId n = 0; n < gates_.size(); ++n) {
    pending[n] = static_cast<unsigned>(gates_[n].fanins.size());
    for (NetId f : gates_[n].fanins) fanouts[f].push_back(n);
  }
  std::vector<NetId> order;
  order.reserve(gates_.size());
  std::vector<NetId> ready;  // processed FIFO for deterministic, stable order
  for (NetId n = 0; n < gates_.size(); ++n)
    if (pending[n] == 0) ready.push_back(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NetId n = ready[head];
    order.push_back(n);
    for (NetId fo : fanouts[n]) {
      if (--pending[fo] == 0) ready.push_back(fo);
    }
  }
  if (order.size() != gates_.size())
    throw std::logic_error("netlist contains a combinational cycle");
  return order;
}

std::vector<unsigned> Netlist::reverse_topological_levels() const {
  const std::vector<NetId> topo = topological_order();
  std::vector<unsigned> level(gates_.size(), 0);
  // Walk anti-topologically: a net's reverse level is 1 + max over fanouts.
  // Outputs anchor at 0; nets feeding nothing also get 0 and then dominate
  // nothing, which keeps them below their fanins as required.
  std::vector<std::vector<NetId>> fanouts(gates_.size());
  for (NetId n = 0; n < gates_.size(); ++n)
    for (NetId f : gates_[n].fanins) fanouts[f].push_back(n);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NetId n = *it;
    unsigned lv = 0;
    for (NetId fo : fanouts[n]) lv = std::max(lv, level[fo] + 1);
    level[n] = lv;
  }
  return level;
}

std::string Netlist::validate() const {
  for (NetId n = 0; n < gates_.size(); ++n) {
    const Gate& g = gates_[n];
    const std::size_t arity = g.fanins.size();
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        if (arity != 0) return "net " + g.name + ": source gate with fanins";
        break;
      case GateType::kBuf:
      case GateType::kNot:
        if (arity != 1) return "net " + g.name + ": unary gate needs 1 fanin";
        break;
      default:
        if (arity < 2) return "net " + g.name + ": gate needs >= 2 fanins";
        break;
    }
    for (NetId f : g.fanins) {
      if (f >= gates_.size()) return "net " + g.name + ": dangling fanin";
    }
  }
  try {
    (void)topological_order();
  } catch (const std::logic_error& e) {
    return e.what();
  }
  for (const Word& w : words_) {
    if (w.bits.empty()) return "word " + w.name + ": empty";
    for (NetId b : w.bits) {
      if (b >= gates_.size()) return "word " + w.name + ": dangling bit";
    }
  }
  return {};
}

}  // namespace gfa
