#pragma once
// Bug injection for negative testing and debugging experiments.
//
// The paper's Example 5.1 demonstrates the abstraction on a buggy circuit
// (an XOR fed the wrong operand): the extracted canonical polynomial then
// differs from the spec and *is* the polynomial of the buggy function. These
// helpers create such defective variants: flip a gate's function, or reroute
// one fanin to a different (topologically legal) net.

#include <cstdint>
#include <string>

#include "circuit/netlist.h"

namespace gfa {

struct BugDescription {
  std::string text;  // human-readable, e.g. "net s2: and -> or"
};

/// Replaces the function of net `target` with `new_type` (arity-compatible:
/// swapping among {and,or,xor,nand,nor,xnor} or {buf,not}).
Netlist inject_gate_type_bug(const Netlist& netlist, NetId target,
                             GateType new_type, BugDescription* desc = nullptr);

/// Reroutes fanin `fanin_index` of `target` to `new_fanin`. The caller must
/// pick `new_fanin` topologically before `target` (checked; aborts on cycles).
Netlist inject_wire_bug(const Netlist& netlist, NetId target,
                        std::size_t fanin_index, NetId new_fanin,
                        BugDescription* desc = nullptr);

/// Deterministic pseudo-random single-gate bug: picks a logic gate and either
/// flips its type or reroutes one fanin, keyed by `seed`. The result always
/// differs structurally from the input netlist (the mutation is re-drawn if it
/// would be an identity, e.g. rerouting a fanin to itself).
Netlist inject_random_bug(const Netlist& netlist, std::uint64_t seed,
                          BugDescription* desc = nullptr);

}  // namespace gfa
