#include "circuit/simplify.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <vector>

namespace gfa {

namespace {

// A literal over the *new* netlist: a constant, or a possibly-negated net.
struct Lit {
  enum class Kind : std::uint8_t { kConst0, kConst1, kNet } kind = Kind::kConst0;
  NetId net = kNoNet;
  bool negated = false;

  static Lit c0() { return {Kind::kConst0, kNoNet, false}; }
  static Lit c1() { return {Kind::kConst1, kNoNet, false}; }
  static Lit of(NetId n, bool neg = false) { return {Kind::kNet, n, neg}; }

  bool is_const() const { return kind != Kind::kNet; }
  bool value() const { return kind == Kind::kConst1; }
  Lit inverted() const {
    if (kind == Kind::kConst0) return c1();
    if (kind == Kind::kConst1) return c0();
    return of(net, !negated);
  }
};

class Rewriter {
 public:
  explicit Rewriter(const Netlist& old) : old_(old), out_(old.name()) {}

  Netlist run(SimplifyStats* stats) {
    lits_.resize(old_.num_nets());
    for (NetId n : old_.topological_order()) lits_[n] = rewrite(n);

    // Materialize outputs and word bits (constants / negations need a real
    // net), then re-declare the interface structure.
    std::unordered_map<NetId, NetId> materialized;
    auto materialize = [&](NetId old_net) -> NetId {
      if (auto it = materialized.find(old_net); it != materialized.end())
        return it->second;
      const Lit l = lits_[old_net];
      NetId n;
      if (l.kind == Lit::Kind::kNet && !l.negated) {
        n = l.net;
      } else {
        const std::string name = fresh_name(old_.gate(old_net).name);
        if (l.is_const())
          n = out_.add_const(l.value(), name);
        else
          n = out_.add_gate(GateType::kNot, {l.net}, name);
      }
      materialized.emplace(old_net, n);
      return n;
    };

    for (NetId o : old_.outputs()) out_.mark_output(materialize(o));
    for (const Word& w : old_.words()) {
      std::vector<NetId> bits;
      bits.reserve(w.bits.size());
      for (NetId b : w.bits) bits.push_back(materialize(b));
      out_.declare_word(w.name, std::move(bits));
    }

    Netlist pruned = prune(out_);
    if (stats) {
      stats->gates_before = old_.num_logic_gates();
      stats->gates_after = pruned.num_logic_gates();
    }
    return pruned;
  }

 private:
  const Netlist& old_;
  Netlist out_;
  std::vector<Lit> lits_;                               // indexed by old NetId
  std::unordered_map<NetId, NetId> not_cache_;          // new net -> inverter
  std::map<std::pair<int, std::vector<NetId>>, NetId> gate_cache_;  // CSE
  std::unordered_map<std::string, int> name_uses_;

  std::string fresh_name(const std::string& base) {
    std::string name = base;
    while (out_.find_net(name) != kNoNet)
      name = base + "_s" + std::to_string(++name_uses_[base]);
    return name;
  }

  NetId materialize_lit(const Lit& l) {
    assert(l.kind == Lit::Kind::kNet);
    if (!l.negated) return l.net;
    if (auto it = not_cache_.find(l.net); it != not_cache_.end()) return it->second;
    const NetId n = out_.add_gate(GateType::kNot, {l.net},
                                  fresh_name(out_.gate(l.net).name + "_n"));
    not_cache_.emplace(l.net, n);
    return n;
  }

  NetId cached_gate(GateType type, std::vector<NetId> fanins) {
    std::sort(fanins.begin(), fanins.end());
    const auto key = std::make_pair(static_cast<int>(type), fanins);
    if (auto it = gate_cache_.find(key); it != gate_cache_.end()) return it->second;
    const NetId n = out_.add_gate(type, fanins);
    gate_cache_.emplace(key, n);
    return n;
  }

  Lit rewrite(NetId n) {
    const Netlist::Gate& g = old_.gate(n);
    switch (g.type) {
      case GateType::kInput: {
        NetId in = out_.find_net(g.name);
        if (in == kNoNet) in = out_.add_input(g.name);
        return Lit::of(in);
      }
      case GateType::kConst0:
        return Lit::c0();
      case GateType::kConst1:
        return Lit::c1();
      case GateType::kBuf:
        return lits_[g.fanins[0]];
      case GateType::kNot:
        return lits_[g.fanins[0]].inverted();
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        // Normalize OR/NOR to AND via De Morgan: or(x…) = ¬and(¬x…).
        const bool is_or = g.type == GateType::kOr || g.type == GateType::kNor;
        const bool invert_core =
            g.type == GateType::kNand || g.type == GateType::kOr;
        std::vector<Lit> ins;
        for (NetId f : g.fanins) {
          Lit l = lits_[f];
          if (is_or) l = l.inverted();
          if (l.kind == Lit::Kind::kConst0)
            return invert_core ? Lit::c1() : Lit::c0();
          if (l.kind == Lit::Kind::kConst1) continue;  // neutral for AND
          ins.push_back(l);
        }
        // Dedup: x·x = x ; x·¬x = 0.
        std::sort(ins.begin(), ins.end(), [](const Lit& a, const Lit& b) {
          return a.net != b.net ? a.net < b.net : a.negated < b.negated;
        });
        std::vector<Lit> uniq;
        for (const Lit& l : ins) {
          if (!uniq.empty() && uniq.back().net == l.net) {
            if (uniq.back().negated != l.negated)
              return invert_core ? Lit::c1() : Lit::c0();
            continue;
          }
          uniq.push_back(l);
        }
        Lit result;
        if (uniq.empty()) {
          result = Lit::c1();
        } else if (uniq.size() == 1) {
          result = uniq[0];
        } else {
          std::vector<NetId> fanins;
          fanins.reserve(uniq.size());
          for (const Lit& l : uniq) fanins.push_back(materialize_lit(l));
          result = Lit::of(cached_gate(GateType::kAnd, std::move(fanins)));
        }
        return invert_core ? result.inverted() : result;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity = g.type == GateType::kXnor;
        std::map<NetId, unsigned> counts;
        for (NetId f : g.fanins) {
          const Lit l = lits_[f];
          if (l.is_const()) {
            parity ^= l.value();
          } else {
            parity ^= l.negated;
            counts[l.net] += 1;
          }
        }
        std::vector<NetId> fanins;
        for (const auto& [net, c] : counts)
          if (c % 2) fanins.push_back(net);  // x ⊕ x = 0
        Lit result;
        if (fanins.empty())
          result = Lit::c0();
        else if (fanins.size() == 1)
          result = Lit::of(fanins[0]);
        else
          result = Lit::of(cached_gate(GateType::kXor, std::move(fanins)));
        return parity ? result.inverted() : result;
      }
    }
    return Lit::c0();  // unreachable
  }

  static Netlist prune(const Netlist& nl) {
    // Keep only the cone of outputs and word bits, plus all primary inputs
    // (preserving the module interface).
    std::vector<bool> keep(nl.num_nets(), false);
    std::vector<NetId> stack;
    auto mark = [&](NetId n) {
      if (!keep[n]) {
        keep[n] = true;
        stack.push_back(n);
      }
    };
    for (NetId o : nl.outputs()) mark(o);
    for (const Word& w : nl.words())
      for (NetId b : w.bits) mark(b);
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      for (NetId f : nl.gate(n).fanins) mark(f);
    }
    for (NetId i : nl.inputs()) keep[i] = true;

    Netlist out(nl.name());
    std::vector<NetId> remap(nl.num_nets(), kNoNet);
    for (NetId n : nl.topological_order()) {
      if (!keep[n]) continue;
      const Netlist::Gate& g = nl.gate(n);
      if (g.type == GateType::kInput) {
        remap[n] = out.add_input(g.name);
      } else {
        std::vector<NetId> fanins;
        fanins.reserve(g.fanins.size());
        for (NetId f : g.fanins) fanins.push_back(remap[f]);
        remap[n] = out.add_gate(g.type, fanins, g.name);
      }
    }
    for (NetId o : nl.outputs()) out.mark_output(remap[o]);
    for (const Word& w : nl.words()) {
      std::vector<NetId> bits;
      bits.reserve(w.bits.size());
      for (NetId b : w.bits) bits.push_back(remap[b]);
      out.declare_word(w.name, std::move(bits));
    }
    return out;
  }
};

}  // namespace

Netlist simplify(const Netlist& netlist, SimplifyStats* stats) {
  return Rewriter(netlist).run(stats);
}

}  // namespace gfa
