#include "circuit/ecc.h"

#include <cassert>
#include <string>
#include <vector>

#include "circuit/arith_extras.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"

namespace gfa {

Netlist make_const_multiplier(const Gf2k& field, const Gf2k::Elem& c) {
  const unsigned k = field.k();
  Netlist nl("constmul_" + std::to_string(k));
  std::vector<NetId> a(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  // Column j of the linear map: c·α^i expanded over the basis.
  std::vector<std::vector<NetId>> zin(k);
  for (unsigned i = 0; i < k; ++i) {
    const Gf2k::Elem img = field.mul(c, field.alpha_pow(std::uint64_t{i}));
    for (unsigned j = 0; j < k; ++j)
      if (img.coeff(j)) zin[j].push_back(a[i]);
  }
  std::vector<NetId> z(k);
  for (unsigned j = 0; j < k; ++j) {
    const std::string name = "z" + std::to_string(j);
    if (zin[j].empty()) {
      z[j] = nl.add_const(false, name);
    } else if (zin[j].size() == 1) {
      z[j] = nl.add_gate(GateType::kBuf, {zin[j][0]}, name);
    } else {
      NetId acc = zin[j][0];
      for (std::size_t t = 1; t < zin[j].size(); ++t)
        acc = nl.add_gate(GateType::kXor, {acc, zin[j][t]},
                          t + 1 == zin[j].size() ? name : std::string{});
      z[j] = acc;
    }
    nl.mark_output(z[j]);
  }
  nl.declare_word("A", a);
  nl.declare_word("Z", z);
  return nl;
}

Netlist make_ld_point_double(const Gf2k& field, const Gf2k::Elem& b) {
  const unsigned k = field.k();
  Netlist nl("ld_double_" + std::to_string(k));
  std::vector<NetId> x(k), z(k);
  for (unsigned i = 0; i < k; ++i) x[i] = nl.add_input("x" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) z[i] = nl.add_input("z" + std::to_string(i));

  const Netlist squarer = make_squarer(field);
  const Netlist multiplier = make_mastrovito_multiplier(field);
  const Netlist bmul = make_const_multiplier(field, b);

  const std::vector<NetId> x2 = instantiate_block(nl, squarer, "sx_", {{"A", x}}, "Z");
  const std::vector<NetId> z2 = instantiate_block(nl, squarer, "sz_", {{"A", z}}, "Z");
  const std::vector<NetId> x4 = instantiate_block(nl, squarer, "sx2_", {{"A", x2}}, "Z");
  const std::vector<NetId> z4 = instantiate_block(nl, squarer, "sz2_", {{"A", z2}}, "Z");
  const std::vector<NetId> bz4 = instantiate_block(nl, bmul, "bz4_", {{"A", z4}}, "Z");
  const std::vector<NetId> z3 =
      instantiate_block(nl, multiplier, "m_", {{"A", x2}, {"B", z2}}, "Z");

  std::vector<NetId> x3(k);
  for (unsigned i = 0; i < k; ++i) {
    x3[i] = nl.add_gate(GateType::kXor, {x4[i], bz4[i]}, "x3_" + std::to_string(i));
    nl.mark_output(x3[i]);
  }
  for (NetId n : z3) nl.mark_output(n);

  nl.declare_word("X", x);
  nl.declare_word("Z", z);
  nl.declare_word("X3", x3);
  nl.declare_word("Z3", z3);
  return nl;
}

}  // namespace gfa
