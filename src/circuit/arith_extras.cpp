#include "circuit/arith_extras.h"

#include <cassert>
#include <string>
#include <vector>

namespace gfa {

namespace {

NetId xor_tree(Netlist& nl, std::vector<NetId> terms, const std::string& name) {
  if (terms.empty()) return nl.add_const(false, name);
  if (terms.size() == 1) return nl.add_gate(GateType::kBuf, {terms[0]}, name);
  while (terms.size() > 1) {
    std::vector<NetId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const bool last = terms.size() == 2;
      next.push_back(nl.add_gate(GateType::kXor, {terms[i], terms[i + 1]},
                                 last ? name : std::string{}));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

/// The F_2-linear map a -> a·α^{shift} composed with squaring exponents:
/// emits XOR networks z_j = Σ_i m_{ij} a_i given column expansions.
std::vector<NetId> linear_network(Netlist& nl, const Gf2k& field,
                                  const std::vector<NetId>& in,
                                  const std::vector<Gf2k::Elem>& image_of_basis,
                                  const std::string& out_prefix) {
  const unsigned k = field.k();
  std::vector<std::vector<NetId>> zin(k);
  for (unsigned i = 0; i < in.size(); ++i) {
    for (unsigned j = 0; j < k; ++j)
      if (image_of_basis[i].coeff(j)) zin[j].push_back(in[i]);
  }
  std::vector<NetId> out(k);
  for (unsigned j = 0; j < k; ++j)
    out[j] = xor_tree(nl, zin[j], out_prefix + std::to_string(j));
  return out;
}

}  // namespace

Netlist make_squarer(const Gf2k& field) {
  const unsigned k = field.k();
  Netlist nl("squarer_" + std::to_string(k));
  std::vector<NetId> a(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  std::vector<Gf2k::Elem> image(k);
  for (unsigned i = 0; i < k; ++i)
    image[i] = field.alpha_pow(std::uint64_t{2} * i);  // (α^i)² = α^{2i}
  const std::vector<NetId> z = linear_network(nl, field, a, image, "z");
  for (NetId n : z) nl.mark_output(n);
  nl.declare_word("A", a);
  nl.declare_word("Z", z);
  return nl;
}

Netlist make_adder(const Gf2k& field) {
  const unsigned k = field.k();
  Netlist nl("adder_" + std::to_string(k));
  std::vector<NetId> a(k), b(k), z(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) {
    z[i] = nl.add_gate(GateType::kXor, {a[i], b[i]}, "z" + std::to_string(i));
    nl.mark_output(z[i]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

Netlist make_multiply_accumulate(const Gf2k& field) {
  const unsigned k = field.k();
  Netlist nl("mac_" + std::to_string(k));
  std::vector<NetId> a(k), b(k), c(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) c[i] = nl.add_input("c" + std::to_string(i));

  // S = A × B (carry-free), with C folded into the low coordinates before
  // reduction: Z = (S + C) mod P = A·B + C since deg C < k.
  std::vector<std::vector<NetId>> diag(2 * k - 1);
  for (unsigned i = 0; i < k; ++i)
    for (unsigned j = 0; j < k; ++j)
      diag[i + j].push_back(nl.add_gate(
          GateType::kAnd, {a[i], b[j]},
          "p" + std::to_string(i) + "_" + std::to_string(j)));
  for (unsigned j = 0; j < k; ++j) diag[j].push_back(c[j]);

  std::vector<NetId> s(2 * k - 1);
  for (unsigned t = 0; t < 2 * k - 1; ++t)
    s[t] = xor_tree(nl, diag[t], "s" + std::to_string(t));

  std::vector<std::vector<NetId>> zin(k);
  for (unsigned j = 0; j < k; ++j) zin[j].push_back(s[j]);
  for (unsigned i = 0; i + k < 2 * k - 1; ++i) {
    const Gf2k::Elem red = field.alpha_pow(std::uint64_t{k} + i);
    for (unsigned j = 0; j < k; ++j)
      if (red.coeff(j)) zin[j].push_back(s[k + i]);
  }
  std::vector<NetId> z(k);
  for (unsigned j = 0; j < k; ++j) {
    z[j] = xor_tree(nl, zin[j], "z" + std::to_string(j));
    nl.mark_output(z[j]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("C", c);
  nl.declare_word("Z", z);
  return nl;
}

Netlist make_frobenius_power(const Gf2k& field, unsigned e) {
  assert(e >= 1);
  const unsigned k = field.k();
  Netlist nl("frob" + std::to_string(e) + "_" + std::to_string(k));
  std::vector<NetId> cur(k);
  for (unsigned i = 0; i < k; ++i) cur[i] = nl.add_input("a" + std::to_string(i));
  nl.declare_word("A", cur);
  std::vector<Gf2k::Elem> image(k);
  for (unsigned i = 0; i < k; ++i)
    image[i] = field.alpha_pow(std::uint64_t{2} * i);
  for (unsigned stage = 0; stage < e; ++stage) {
    const std::string prefix =
        stage + 1 == e ? "z" : "q" + std::to_string(stage) + "_";
    cur = linear_network(nl, field, cur, image, prefix);
  }
  for (NetId n : cur) nl.mark_output(n);
  nl.declare_word("Z", cur);
  return nl;
}

}  // namespace gfa
