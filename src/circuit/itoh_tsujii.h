#pragma once
// Itoh–Tsujii inversion over F_{2^k}, as a hierarchy of multiplier and
// Frobenius-power blocks.
//
// A^{-1} = (A^{2^{k-1}-1})², with A^{2^{k-1}-1} computed by the classic
// addition chain on exponents of the form 2^e - 1:
//
//     A^{2^{2e}-1}   = (A^{2^e-1})^{2^e} · A^{2^e-1}
//     A^{2^{e+1}-1}  = (A^{2^e-1})^{2}   · A
//
// following the binary expansion of k-1. Every step is a Frobenius-power
// block (pure XOR network) or a Mastrovito multiplier block.
//
// This is the showcase for the paper's hierarchy argument taken further than
// multipliers: the *flat* gate-level inverter cannot be abstracted — its
// canonical bit-level remainder is exponentially dense (inversion is
// maximally nonlinear) — but per-block abstraction plus word-level
// composition proves the whole circuit implements exactly Z = A^{q-2}, the
// canonical polynomial of inversion (0 ↦ 0 included).

#include <memory>
#include <vector>

#include "abstraction/hierarchy.h"
#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

struct ItohTsujiiHierarchy {
  /// Owned blocks; the graph's instances point into these.
  std::vector<std::unique_ptr<Netlist>> blocks;
  WordSignalGraph graph;  // primary input "A", output "INV"
  std::size_t total_gates = 0;
};

/// Builds the block hierarchy computing INV = A^{-1} (and 0 -> 0).
ItohTsujiiHierarchy make_itoh_tsujii(const Gf2k& field);

/// The canonical polynomial of field inversion: X^{q-2}.
MPoly inversion_spec(const Gf2k& field, VarId word_var);

}  // namespace gfa
