#pragma once
// Bit-parallel netlist simulation.
//
// Each net carries 64 independent Boolean lanes packed in a uint64_t, so one
// pass evaluates 64 test vectors. A word-level wrapper maps F_{2^k} elements
// onto the bit lanes of a declared word (coordinate i of element -> bit net
// bits[i]) and reads word outputs back as field elements; it is used to
// cross-validate the circuit generators against direct field arithmetic and
// to produce counterexamples for buggy circuits.

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "gf2/gf2_poly.h"

namespace gfa {

/// Evaluates all nets. `input_lanes[i]` holds the 64 lanes for the i-th net in
/// netlist.inputs(). Returns the lanes of every net, indexed by NetId.
std::vector<std::uint64_t> simulate(const Netlist& netlist,
                                    const std::vector<std::uint64_t>& input_lanes);

/// Word-level simulation: drives each (word, elements) pair — all element
/// vectors must share one length L <= 64 — evaluates the circuit, and returns
/// the L values of `out_word` as field representatives (degree < bit width).
/// Input bits not covered by any driven word must not exist.
std::vector<Gf2Poly> simulate_words(
    const Netlist& netlist, const Word& out_word,
    const std::vector<std::pair<const Word*, std::vector<Gf2Poly>>>& in_words);

}  // namespace gfa
