#include "circuit/itoh_tsujii.h"

#include <cassert>
#include <string>

#include "circuit/arith_extras.h"
#include "circuit/mastrovito.h"

namespace gfa {

ItohTsujiiHierarchy make_itoh_tsujii(const Gf2k& field) {
  const unsigned k = field.k();
  assert(k >= 2);
  ItohTsujiiHierarchy h;
  h.graph.primary_inputs = {"A"};

  // One shared Mastrovito block for every multiplication step.
  h.blocks.push_back(
      std::make_unique<Netlist>(make_mastrovito_multiplier(field)));
  const Netlist* mul = h.blocks.back().get();

  auto frob_block = [&](unsigned e) {
    h.blocks.push_back(
        std::make_unique<Netlist>(make_frobenius_power(field, e)));
    return h.blocks.back().get();
  };
  auto signal = [](unsigned e) { return "S" + std::to_string(e); };

  int step = 0;
  auto add_mul = [&](const std::string& x, const std::string& y,
                     const std::string& out) {
    h.graph.instances.push_back(
        {mul, "mul" + std::to_string(step++), {{"A", x}, {"B", y}}, out});
  };
  auto add_frob = [&](unsigned e, const std::string& in, const std::string& out) {
    h.graph.instances.push_back({frob_block(e),
                                 "frob" + std::to_string(e) + "_" +
                                     std::to_string(step++),
                                 {{"A", in}},
                                 out});
  };

  // Addition chain on exponents e with S_e = A^{2^e - 1}; S_1 = A.
  const unsigned m = k - 1;
  // Binary expansion of m, most significant bit first.
  int top = 31;
  while (top > 0 && !((m >> top) & 1u)) --top;
  unsigned e = 1;
  // S_1 is the primary input itself: alias via the chain below. We track the
  // signal carrying S_e; initially the input "A".
  std::string cur = "A";
  for (int i = top - 1; i >= 0; --i) {
    // Double: S_{2e} = Frob_e(S_e) * S_e.
    const std::string shifted = signal(e) + "f";
    add_frob(e, cur, shifted);
    const std::string doubled = signal(2 * e);
    add_mul(shifted, cur, doubled);
    cur = doubled;
    e *= 2;
    if ((m >> i) & 1u) {
      // Increment: S_{e+1} = Frob_1(S_e) * A.
      const std::string sq = signal(e) + "s";
      add_frob(1, cur, sq);
      const std::string inc = signal(e + 1);
      add_mul(sq, "A", inc);
      cur = inc;
      e += 1;
    }
  }
  assert(e == m);

  // INV = (S_{k-1})².
  add_frob(1, cur, "INV");
  h.graph.output_signal = "INV";

  for (const auto& blk : h.blocks) h.total_gates += blk->num_logic_gates();
  return h;
}

MPoly inversion_spec(const Gf2k& field, VarId word_var) {
  MPoly p(&field);
  p.add_term(Monomial(word_var, field.order() - BigUint(2)), field.one());
  return p;
}

}  // namespace gfa
