#include "circuit/sim.h"

#include <cassert>
#include <stdexcept>

namespace gfa {

std::vector<std::uint64_t> simulate(const Netlist& netlist,
                                    const std::vector<std::uint64_t>& input_lanes) {
  assert(input_lanes.size() == netlist.inputs().size());
  std::vector<std::uint64_t> value(netlist.num_nets(), 0);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
    value[netlist.inputs()[i]] = input_lanes[i];

  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    switch (g.type) {
      case GateType::kInput:
        break;  // already seeded
      case GateType::kConst0:
        value[n] = 0;
        break;
      case GateType::kConst1:
        value[n] = ~std::uint64_t{0};
        break;
      case GateType::kBuf:
        value[n] = value[g.fanins[0]];
        break;
      case GateType::kNot:
        value[n] = ~value[g.fanins[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint64_t v = ~std::uint64_t{0};
        for (NetId f : g.fanins) v &= value[f];
        value[n] = g.type == GateType::kNand ? ~v : v;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint64_t v = 0;
        for (NetId f : g.fanins) v |= value[f];
        value[n] = g.type == GateType::kNor ? ~v : v;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::uint64_t v = 0;
        for (NetId f : g.fanins) v ^= value[f];
        value[n] = g.type == GateType::kXnor ? ~v : v;
        break;
      }
    }
  }
  return value;
}

std::vector<Gf2Poly> simulate_words(
    const Netlist& netlist, const Word& out_word,
    const std::vector<std::pair<const Word*, std::vector<Gf2Poly>>>& in_words) {
  std::size_t lanes = 0;
  for (const auto& [w, elems] : in_words) {
    if (lanes == 0) lanes = elems.size();
    if (elems.size() != lanes)
      throw std::invalid_argument("word input vectors differ in length");
  }
  if (lanes == 0 || lanes > 64)
    throw std::invalid_argument("need 1..64 simulation lanes");

  // Pack element coordinates into per-net lanes.
  std::vector<std::uint64_t> input_lanes(netlist.inputs().size(), 0);
  auto input_pos = [&](NetId n) -> std::size_t {
    for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
      if (netlist.inputs()[i] == n) return i;
    throw std::invalid_argument("word bit is not a primary input");
  };
  for (const auto& [w, elems] : in_words) {
    for (std::size_t bit = 0; bit < w->bits.size(); ++bit) {
      std::uint64_t packed = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        if (elems[l].coeff(static_cast<unsigned>(bit)))
          packed |= std::uint64_t{1} << l;
      }
      input_lanes[input_pos(w->bits[bit])] = packed;
    }
  }

  const std::vector<std::uint64_t> value = simulate(netlist, input_lanes);
  std::vector<Gf2Poly> out(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t bit = 0; bit < out_word.bits.size(); ++bit) {
      if ((value[out_word.bits[bit]] >> l) & 1u)
        out[l].set_coeff(static_cast<unsigned>(bit), true);
    }
  }
  return out;
}

}  // namespace gfa
