#pragma once
// Structural Verilog subset: reader and writer.
//
// Real GF arithmetic IP ships as structural Verilog, so the library accepts
// it directly. Supported subset (one module per file):
//
//     module mul (input [1:0] a, input [1:0] b, output [1:0] z);
//       wire s0;                     // scalar and vector declarations,
//       wire [3:0] t;                // header-style or body-style ports
//       and g1 (s0, a[0], b[0]);     // gate primitives, optional instance
//       xor (z[0], s0, t[3]);        //   names, 2+ inputs (not/buf: 1)
//       assign z[1] = (a[1] & b[0]) ^ ~s0 | t[2];  // ~ & ^ | and parens
//     endmodule
//
// Vector ports become declared words (LSB-first, index 0 = α⁰ coordinate),
// which is exactly the word structure the abstraction needs; scalar ports
// stay plain nets. Comments // and /* */ are handled. Unsupported Verilog
// (behavioural blocks, parameters, multiple drivers…) is rejected with a
// line-numbered VerilogError.

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/netlist.h"
#include "util/status.h"

namespace gfa {

struct VerilogError : std::runtime_error {
  VerilogError(std::size_t line, const std::string& message)
      : std::runtime_error("verilog line " + std::to_string(line) + ": " + message),
        line_number(line) {}
  std::size_t line_number;
};

/// Parses the subset above; throws VerilogError on anything else.
Netlist parse_verilog(std::string_view text);

/// Reads and parses a Verilog file.
Netlist read_verilog_file(const std::string& path);

/// Emits the netlist as structural Verilog (gate primitives only; declared
/// words become vector ports when their bits are all inputs/outputs).
/// Round-trips through parse_verilog.
std::string write_verilog(const Netlist& netlist);

void write_verilog_file(const Netlist& netlist, const std::string& path);

/// Non-throwing variants: VerilogError maps to Status kParseError (carrying
/// the line-numbered message), I/O failure to kInvalidArgument.
Result<Netlist> try_parse_verilog(std::string_view text);
Result<Netlist> try_read_verilog_file(const std::string& path);

}  // namespace gfa
