#include "circuit/mastrovito.h"

#include <cassert>
#include <string>
#include <vector>

namespace gfa {

namespace {

/// Balanced 2-input XOR tree over `terms`; returns kNoNet for an empty list.
NetId xor_tree(Netlist& nl, std::vector<NetId> terms, const std::string& name) {
  if (terms.empty()) return kNoNet;
  while (terms.size() > 1) {
    std::vector<NetId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const bool last = terms.size() == 2;
      next.push_back(nl.add_gate(GateType::kXor, {terms[i], terms[i + 1]},
                                 last ? name : std::string{}));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace

Netlist make_mastrovito_multiplier(const Gf2k& field) {
  const unsigned k = field.k();
  Netlist nl("mastrovito_" + std::to_string(k));

  std::vector<NetId> a(k), b(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  // Stage 1: S = A × B as a 2k-1 coordinate carry-free product.
  std::vector<std::vector<NetId>> diag(2 * k - 1);
  for (unsigned i = 0; i < k; ++i)
    for (unsigned j = 0; j < k; ++j)
      diag[i + j].push_back(nl.add_gate(
          GateType::kAnd, {a[i], b[j]},
          "p" + std::to_string(i) + "_" + std::to_string(j)));
  std::vector<NetId> s(2 * k - 1);
  for (unsigned t = 0; t < 2 * k - 1; ++t)
    s[t] = xor_tree(nl, diag[t], "s" + std::to_string(t));

  // Stage 2: fold s_{k+i} through α^{k+i} mod P into the low coordinates.
  std::vector<std::vector<NetId>> zin(k);
  for (unsigned j = 0; j < k; ++j) zin[j].push_back(s[j]);
  for (unsigned i = 0; i + k < 2 * k - 1; ++i) {
    const Gf2k::Elem red = field.alpha_pow(std::uint64_t{k} + i);
    for (unsigned j = 0; j < k; ++j) {
      if (red.coeff(j)) zin[j].push_back(s[k + i]);
    }
  }
  std::vector<NetId> z(k);
  for (unsigned j = 0; j < k; ++j) {
    z[j] = xor_tree(nl, zin[j], "z" + std::to_string(j));
    assert(z[j] != kNoNet);
    nl.mark_output(z[j]);
  }

  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

}  // namespace gfa
