#pragma once
// Massey–Omura multiplier over a normal basis of F_{2^k}.
//
// With words interpreted over a normal basis {β^{2^i}}, the product's
// coordinates are the bilinear forms  z_l = Σ_{i,j} λ_l[i][j]·a_i·b_j  with
// the cyclic-shift symmetry λ_l[i][j] = λ_0[i-l][j-l] (indices mod k) — the
// classic Massey–Omura structure. The generator shares the k² partial
// products and emits one XOR tree per output bit.
//
// Together with the basis-parameterized abstraction this enables the
// cross-representation experiment: prove a polynomial-basis Mastrovito
// multiplier equivalent to a normal-basis Massey–Omura multiplier, two
// circuits that agree on *no* bit encoding, only on the field function.

#include "circuit/netlist.h"
#include "gf/normal_basis.h"

namespace gfa {

/// Flat gate-level Massey–Omura multiplier; words A, B, Z are coordinates
/// over `nb` (LSB-first: bit i multiplies β^{2^i}).
Netlist make_massey_omura_multiplier(const Gf2k& field, const NormalBasis& nb);

/// A normal-basis squarer: the cyclic coordinate shift, as buffers.
Netlist make_normal_basis_squarer(const Gf2k& field);

}  // namespace gfa
