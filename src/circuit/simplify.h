#pragma once
// Constant propagation and netlist cleanup.
//
// Rewrites a netlist by propagating constants, collapsing buffers and double
// negations, deduplicating fanins (x·x = x, x⊕x = 0, x·¬x = 0, x⊕¬x = 1) and
// dropping logic outside the cone of the outputs and declared words. This is
// how the four Montgomery blocks of Fig. 1 get their different sizes in the
// paper's Table 2: Blk A/B absorb the constant R², Blk Out absorbs the
// constant "1", so the shared MontMul core specializes differently per block.
//
// Output and word structure is preserved: every primary output and word bit
// of the original netlist exists in the result (materialized as a constant,
// buffer, or inverter when simplification reduced it to a literal).

#include "circuit/netlist.h"

namespace gfa {

struct SimplifyStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Returns the simplified netlist; `stats`, when non-null, receives counts.
Netlist simplify(const Netlist& netlist, SimplifyStats* stats = nullptr);

}  // namespace gfa
