#include "circuit/verilog.h"

#include <cassert>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gfa {

namespace {

// ---------------------------------------------------------------- lexer ----

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd } kind;
  std::string text;
  std::size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", line_};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$'))
        ++pos_;
      return {Token::Kind::kIdent, std::string(text_.substr(start, pos_ - start)),
              line_};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return {Token::Kind::kNumber, std::string(text_.substr(start, pos_ - start)),
              line_};
    }
    ++pos_;
    return {Token::Kind::kSymbol, std::string(1, c), line_};
  }

  std::size_t line() const { return line_; }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// --------------------------------------------------------------- parser ----

enum class PortDir { kNone, kInput, kOutput };

/// Caps fed by tools/fuzz_parser: a hostile "[2000000000:0]" range must not
/// expand into gigabytes of bit names, a "~~~~…x" or "((((…x" expression
/// must not overflow the call stack, and a 20-digit literal must be a parse
/// error rather than an uncaught std::out_of_range.
constexpr int kMaxVectorWidth = 1 << 20;
constexpr int kMaxExprDepth = 256;

struct Signal {
  PortDir dir = PortDir::kNone;
  int width = 0;  // 0 = scalar, else vector [width-1:0]
  bool is_port = false;
  std::size_t order = 0;  // declaration order
};

struct GateDecl {
  GateType type;
  std::vector<std::string> fanins;  // resolved bit names
  std::size_t line;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  Netlist parse() {
    expect_ident("module");
    module_name_ = expect(Token::Kind::kIdent).text;
    parse_port_header();
    while (!at_ident("endmodule")) {
      if (cur_.kind == Token::Kind::kEnd)
        throw VerilogError(cur_.line, "missing endmodule");
      parse_item();
    }
    return build();
  }

 private:
  // -- token plumbing --
  void advance() { cur_ = lexer_.next(); }
  bool at_symbol(const char* s) const {
    return cur_.kind == Token::Kind::kSymbol && cur_.text == s;
  }
  bool at_ident(const char* s) const {
    return cur_.kind == Token::Kind::kIdent && cur_.text == s;
  }
  Token expect(Token::Kind kind) {
    if (cur_.kind != kind)
      throw VerilogError(cur_.line, "unexpected token '" + cur_.text + "'");
    Token t = cur_;
    advance();
    return t;
  }
  void expect_symbol(const char* s) {
    if (!at_symbol(s))
      throw VerilogError(cur_.line, std::string("expected '") + s + "', got '" +
                                        cur_.text + "'");
    advance();
  }
  void expect_ident(const char* s) {
    if (!at_ident(s))
      throw VerilogError(cur_.line, std::string("expected '") + s + "', got '" +
                                        cur_.text + "'");
    advance();
  }
  int expect_number() {
    const Token t = expect(Token::Kind::kNumber);
    // Manual bounded parse: std::stoi would throw std::out_of_range on a
    // 20-digit literal, surfacing as kInternal instead of a parse error.
    long v = 0;
    for (char c : t.text) {
      v = v * 10 + (c - '0');
      if (v > kMaxVectorWidth)
        throw VerilogError(t.line, "number '" + t.text + "' out of range (max " +
                                       std::to_string(kMaxVectorWidth) + ")");
    }
    return static_cast<int>(v);
  }

  // -- declarations --
  int parse_optional_range() {
    // "[hi:lo]" with lo == 0 required; returns width (hi+1), or 0 if absent.
    if (!at_symbol("[")) return 0;
    advance();
    const int hi = expect_number();
    expect_symbol(":");
    const int lo = expect_number();
    expect_symbol("]");
    if (lo != 0 || hi < 0)
      throw VerilogError(cur_.line, "only [N:0] ranges are supported");
    if (hi >= kMaxVectorWidth)
      throw VerilogError(cur_.line,
                         "vector width " + std::to_string(hi + 1) +
                             " exceeds the supported maximum (" +
                             std::to_string(kMaxVectorWidth) + ")");
    return hi + 1;
  }

  void declare(const std::string& name, PortDir dir, int width, bool is_port,
               std::size_t line) {
    auto [it, inserted] = signals_.try_emplace(name);
    Signal& s = it->second;
    if (inserted) {
      s.order = next_order_++;
    } else if (s.dir != PortDir::kNone && dir != PortDir::kNone && s.dir != dir) {
      throw VerilogError(line, "conflicting direction for '" + name + "'");
    }
    if (dir != PortDir::kNone) s.dir = dir;
    if (width != 0) {
      if (s.width != 0 && s.width != width)
        throw VerilogError(line, "conflicting width for '" + name + "'");
      s.width = width;
    }
    s.is_port |= is_port;
  }

  void parse_port_header() {
    if (at_symbol(";")) {  // module m; — no ports
      advance();
      return;
    }
    expect_symbol("(");
    if (at_symbol(")")) {
      advance();
      expect_symbol(";");
      return;
    }
    PortDir dir = PortDir::kNone;
    int width = 0;
    for (;;) {
      if (at_ident("input") || at_ident("output")) {
        dir = at_ident("input") ? PortDir::kInput : PortDir::kOutput;
        advance();
        if (at_ident("wire")) advance();
        width = parse_optional_range();
      }
      const Token name = expect(Token::Kind::kIdent);
      declare(name.text, dir, width, /*is_port=*/true, name.line);
      if (at_symbol(")")) break;
      expect_symbol(",");
    }
    expect_symbol(")");
    expect_symbol(";");
  }

  // -- body items --
  void parse_item() {
    if (at_ident("input") || at_ident("output") || at_ident("wire")) {
      const PortDir dir = at_ident("input")    ? PortDir::kInput
                          : at_ident("output") ? PortDir::kOutput
                                               : PortDir::kNone;
      const bool is_port = dir != PortDir::kNone;
      advance();
      if (is_port && at_ident("wire")) advance();
      const int width = parse_optional_range();
      for (;;) {
        const Token name = expect(Token::Kind::kIdent);
        declare(name.text, dir, width, is_port, name.line);
        if (at_symbol(";")) break;
        expect_symbol(",");
      }
      advance();  // ';'
      return;
    }
    if (at_ident("assign")) {
      advance();
      const std::string lhs = parse_bit_ref();
      expect_symbol("=");
      const std::string rhs = parse_expr();
      expect_symbol(";");
      add_gate(lhs, GateType::kBuf, {rhs}, cur_.line);
      return;
    }
    // Gate primitive.
    static const std::unordered_map<std::string, GateType> kGates = {
        {"and", GateType::kAnd},   {"or", GateType::kOr},
        {"xor", GateType::kXor},   {"nand", GateType::kNand},
        {"nor", GateType::kNor},   {"xnor", GateType::kXnor},
        {"not", GateType::kNot},   {"buf", GateType::kBuf},
    };
    if (cur_.kind == Token::Kind::kIdent) {
      auto it = kGates.find(cur_.text);
      if (it != kGates.end()) {
        const GateType type = it->second;
        const std::size_t line = cur_.line;
        advance();
        if (cur_.kind == Token::Kind::kIdent) advance();  // instance name
        expect_symbol("(");
        const std::string out = parse_bit_ref();
        std::vector<std::string> ins;
        while (at_symbol(",")) {
          advance();
          ins.push_back(parse_bit_ref());
        }
        expect_symbol(")");
        expect_symbol(";");
        add_gate(out, type, std::move(ins), line);
        return;
      }
    }
    throw VerilogError(cur_.line, "unsupported construct at '" + cur_.text + "'");
  }

  // -- references & expressions --
  std::string parse_bit_ref() {
    const Token name = expect(Token::Kind::kIdent);
    if (at_symbol("[")) {
      advance();
      const int idx = expect_number();
      expect_symbol("]");
      return bit_name(name.text, idx, name.line);
    }
    auto it = signals_.find(name.text);
    if (it != signals_.end() && it->second.width > 0)
      throw VerilogError(name.line,
                         "vector '" + name.text + "' used without an index");
    return name.text;
  }

  std::string bit_name(const std::string& base, int idx, std::size_t line) {
    auto it = signals_.find(base);
    if (it == signals_.end() || it->second.width == 0)
      throw VerilogError(line, "'" + base + "' is not a declared vector");
    if (idx < 0 || idx >= it->second.width)
      throw VerilogError(line, "index out of range for '" + base + "'");
    return base + "[" + std::to_string(idx) + "]";
  }

  std::string fresh_temp() { return "$t" + std::to_string(temp_counter_++); }

  std::string emit_node(GateType type, std::vector<std::string> ins,
                        std::size_t line) {
    const std::string name = fresh_temp();
    add_gate(name, type, std::move(ins), line);
    return name;
  }

  /// Bounds the recursive-descent depth of parse_expr/parse_unary so hostile
  /// nesting fails as a VerilogError, not a stack overflow.
  struct DepthGuard {
    int& depth;
    DepthGuard(int& d, std::size_t line) : depth(d) {
      if (++depth > kMaxExprDepth)
        throw VerilogError(line, "expression nested deeper than " +
                                     std::to_string(kMaxExprDepth) + " levels");
    }
    ~DepthGuard() { --depth; }
  };

  // expr := xor_expr ( '|' xor_expr )*
  // xor_expr := and_expr ( '^' and_expr )*
  // and_expr := unary ( '&' unary )*
  // unary := '~' unary | '(' expr ')' | bit_ref
  std::string parse_expr() {
    const DepthGuard guard(expr_depth_, cur_.line);
    std::string lhs = parse_xor();
    while (at_symbol("|")) {
      advance();
      lhs = emit_node(GateType::kOr, {lhs, parse_xor()}, cur_.line);
    }
    return lhs;
  }
  std::string parse_xor() {
    std::string lhs = parse_and();
    while (at_symbol("^")) {
      advance();
      lhs = emit_node(GateType::kXor, {lhs, parse_and()}, cur_.line);
    }
    return lhs;
  }
  std::string parse_and() {
    std::string lhs = parse_unary();
    while (at_symbol("&")) {
      advance();
      lhs = emit_node(GateType::kAnd, {lhs, parse_unary()}, cur_.line);
    }
    return lhs;
  }
  std::string parse_unary() {
    const DepthGuard guard(expr_depth_, cur_.line);
    if (at_symbol("~")) {
      advance();
      return emit_node(GateType::kNot, {parse_unary()}, cur_.line);
    }
    if (at_symbol("(")) {
      advance();
      std::string inner = parse_expr();
      expect_symbol(")");
      return inner;
    }
    if (cur_.kind == Token::Kind::kNumber) {
      // Constant literal 1'b0 / 1'b1.
      const std::size_t line = cur_.line;
      if (cur_.text != "1") throw VerilogError(line, "unsupported literal");
      advance();
      expect_symbol("'");
      const Token spec = expect(Token::Kind::kIdent);
      if (spec.text != "b0" && spec.text != "b1")
        throw VerilogError(line, "unsupported literal 1'" + spec.text);
      return emit_node(spec.text == "b1" ? GateType::kConst1 : GateType::kConst0,
                       {}, line);
    }
    return parse_bit_ref();
  }

  void add_gate(const std::string& out, GateType type,
                std::vector<std::string> ins, std::size_t line) {
    const std::size_t arity = ins.size();
    const bool unary = type == GateType::kBuf || type == GateType::kNot;
    const bool source = type == GateType::kConst0 || type == GateType::kConst1;
    if (source ? arity != 0 : (unary ? arity != 1 : arity < 2))
      throw VerilogError(line, "wrong number of connections");
    if (!gates_.emplace(out, GateDecl{type, std::move(ins), line}).second)
      throw VerilogError(line, "net '" + out + "' has multiple drivers");
    gate_order_.push_back(out);
  }

  // -- netlist construction --
  Netlist build() {
    Netlist netlist(module_name_);

    // Expand declared signals into bit names, in declaration order.
    std::vector<std::pair<std::string, const Signal*>> ordered;
    for (const auto& [name, sig] : signals_) ordered.emplace_back(name, &sig);
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      return a.second->order < b.second->order;
    });

    auto bits_of = [&](const std::string& name, const Signal& s) {
      std::vector<std::string> bits;
      if (s.width == 0) {
        bits.push_back(name);
      } else {
        for (int i = 0; i < s.width; ++i)
          bits.push_back(name + "[" + std::to_string(i) + "]");
      }
      return bits;
    };

    // Primary inputs first.
    for (const auto& [name, sig] : ordered) {
      if (sig->dir != PortDir::kInput) continue;
      for (const std::string& bit : bits_of(name, *sig)) {
        if (gates_.count(bit))
          throw VerilogError(gates_.at(bit).line, "input '" + bit + "' is driven");
        netlist.add_input(bit);
      }
    }

    // Emit gates in dependency order (out-of-order bodies are legal), with
    // an explicit work stack: a deep assign chain must not overflow the call
    // stack (found by tools/fuzz_parser).
    std::unordered_map<std::string, char> visiting;  // 1 = on the DFS stack
    struct Frame {
      const std::string* name;
      const GateDecl* decl;
      std::size_t next_fanin = 0;
    };
    std::vector<Frame> stack;
    auto open = [&](const std::string& name) {
      if (netlist.find_net(name) != kNoNet) return;
      auto it = gates_.find(name);
      if (it == gates_.end())
        throw VerilogError(0, "net '" + name + "' is never driven");
      if (visiting[name])
        throw VerilogError(it->second.line,
                           "combinational cycle through '" + name + "'");
      visiting[name] = 1;
      stack.push_back({&it->first, &it->second});
    };
    for (const std::string& root : gate_order_) {
      open(root);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_fanin < f.decl->fanins.size()) {
          open(f.decl->fanins[f.next_fanin++]);
          continue;
        }
        std::vector<NetId> fanins;
        fanins.reserve(f.decl->fanins.size());
        for (const std::string& fn : f.decl->fanins)
          fanins.push_back(netlist.find_net(fn));
        netlist.add_gate(f.decl->type, fanins, *f.name);
        visiting[*f.name] = 0;
        stack.pop_back();
      }
    }

    // Outputs (and any remaining undriven output is an error).
    for (const auto& [name, sig] : ordered) {
      if (sig->dir != PortDir::kOutput) continue;
      for (const std::string& bit : bits_of(name, *sig)) {
        const NetId n = netlist.find_net(bit);
        if (n == kNoNet) throw VerilogError(0, "output '" + bit + "' is never driven");
        netlist.mark_output(n);
      }
    }

    // Vector ports become words.
    for (const auto& [name, sig] : ordered) {
      if (sig->width == 0 || sig->dir == PortDir::kNone) continue;
      std::vector<NetId> bits;
      for (const std::string& bit : bits_of(name, *sig))
        bits.push_back(netlist.find_net(bit));
      netlist.declare_word(name, std::move(bits));
    }
    return netlist;
  }

  Lexer lexer_;
  Token cur_;
  std::string module_name_;
  std::map<std::string, Signal> signals_;
  std::unordered_map<std::string, GateDecl> gates_;
  std::vector<std::string> gate_order_;
  std::size_t next_order_ = 0;
  int temp_counter_ = 0;
  int expr_depth_ = 0;
};

// --------------------------------------------------------------- writer ----

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), 'n');
  return out;
}

}  // namespace

Netlist parse_verilog(std::string_view text) { return Parser(text).parse(); }

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open verilog file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_verilog(buf.str());
}

std::string write_verilog(const Netlist& netlist) {
  std::vector<bool> is_output(netlist.num_nets(), false);
  for (NetId o : netlist.outputs()) is_output[o] = true;
  std::vector<bool> is_input(netlist.num_nets(), false);
  for (NetId i : netlist.inputs()) is_input[i] = true;

  // Words whose bits are all inputs or all outputs become vector ports; only
  // their bits print as vector references. Everything else gets a sanitized
  // unique scalar name.
  std::vector<const Word*> port_words;
  for (const Word& w : netlist.words()) {
    bool all_in = true, all_out = true;
    for (NetId b : w.bits) {
      all_in = all_in && is_input[b];
      all_out = all_out && is_output[b];
    }
    if (all_in || all_out) port_words.push_back(&w);
  }

  std::vector<std::string> ref(netlist.num_nets());
  std::unordered_set<std::string> used;
  std::unordered_set<NetId> in_word;
  for (const Word* w : port_words) {
    const std::string base = sanitize(w->name);
    used.insert(base);
    for (std::size_t i = 0; i < w->bits.size(); ++i) {
      if (ref[w->bits[i]].empty()) {
        ref[w->bits[i]] = base + "[" + std::to_string(i) + "]";
        in_word.insert(w->bits[i]);
      }
    }
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    if (!ref[n].empty()) continue;
    std::string base = sanitize(netlist.gate(n).name);
    std::string name = base;
    int suffix = 0;
    while (!used.insert(name).second) name = base + "_" + std::to_string(++suffix);
    ref[n] = name;
  }

  std::ostringstream out;
  out << "module " << sanitize(netlist.name()) << " (\n";
  std::vector<std::string> port_lines;
  for (const Word* w : port_words) {
    const bool all_in = is_input[w->bits[0]];
    port_lines.push_back(std::string(all_in ? "  input" : "  output") + " [" +
                         std::to_string(w->bits.size() - 1) + ":0] " +
                         sanitize(w->name));
  }
  for (NetId n : netlist.inputs())
    if (!in_word.count(n)) port_lines.push_back("  input " + ref[n]);
  for (NetId n : netlist.outputs())
    if (!in_word.count(n)) port_lines.push_back("  output " + ref[n]);
  for (std::size_t i = 0; i < port_lines.size(); ++i)
    out << port_lines[i] << (i + 1 < port_lines.size() ? "," : "") << "\n";
  out << ");\n";

  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    if (g.type == GateType::kInput) continue;
    if (!in_word.count(n) && !is_output[n] && ref[n].find('[') == std::string::npos)
      out << "  wire " << ref[n] << ";\n";
  }
  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        out << "  assign " << ref[n] << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        out << "  assign " << ref[n] << " = 1'b1;\n";
        break;
      default: {
        out << "  " << gate_type_name(g.type) << " (" << ref[n];
        for (NetId f : g.fanins) out << ", " << ref[f];
        out << ");\n";
        break;
      }
    }
  }
  out << "endmodule\n";
  return out.str();
}

void write_verilog_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write verilog file: " + path);
  out << write_verilog(netlist);
}

Result<Netlist> try_parse_verilog(std::string_view text) {
  try {
    return parse_verilog(text);
  } catch (const VerilogError& e) {
    return Status::parse_error(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<Netlist> try_read_verilog_file(const std::string& path) {
  try {
    return read_verilog_file(path);
  } catch (const VerilogError& e) {
    return Status::parse_error(path + ": " + e.what());
  } catch (const std::runtime_error& e) {
    return Status::invalid_argument(e.what());  // I/O failure
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
