#include "circuit/montgomery.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/simplify.h"

namespace gfa {

Netlist make_montmul_block(const Gf2k& field, std::string_view module_name,
                           std::optional<Gf2Poly> y_constant) {
  const unsigned k = field.k();
  const Gf2Poly& p = field.modulus();
  Netlist nl{std::string(module_name)};

  std::vector<NetId> x(k), y(k);
  for (unsigned i = 0; i < k; ++i) x[i] = nl.add_input("x" + std::to_string(i));
  if (y_constant) {
    assert(y_constant->degree() < static_cast<int>(k));
    for (unsigned i = 0; i < k; ++i)
      y[i] = nl.add_const(y_constant->coeff(i), "y" + std::to_string(i));
  } else {
    for (unsigned i = 0; i < k; ++i) y[i] = nl.add_input("y" + std::to_string(i));
  }

  // C starts at 0; represent the initial accumulator with constant nets which
  // the round logic consumes uniformly (simplify() folds them away later for
  // constant-Y blocks; for the generic block the first round's XORs with 0
  // are kept, matching a real unrolled implementation).
  std::vector<NetId> c(k);
  const NetId zero = nl.add_const(false, "c_init");
  for (unsigned j = 0; j < k; ++j) c[j] = zero;

  for (unsigned i = 0; i < k; ++i) {
    const std::string it = std::to_string(i);
    // T = C + x_i · Y
    std::vector<NetId> t(k);
    for (unsigned j = 0; j < k; ++j) {
      const NetId pp = nl.add_gate(GateType::kAnd, {x[i], y[j]},
                                   "m" + it + "_" + std::to_string(j));
      t[j] = nl.add_gate(GateType::kXor, {c[j], pp},
                         "t" + it + "_" + std::to_string(j));
    }
    // U = T + T[0]·P ; U[0] = 0 by construction, U[k] = T[0] (P is monic and
    // has constant term 1). C' = U / x.
    std::vector<NetId> next(k);
    for (unsigned j = 0; j + 1 < k; ++j) {
      if (p.coeff(j + 1)) {
        next[j] = nl.add_gate(GateType::kXor, {t[j + 1], t[0]},
                              "u" + it + "_" + std::to_string(j));
      } else {
        next[j] = t[j + 1];
      }
    }
    next[k - 1] = t[0];  // U[k] = T[0]
    c = std::move(next);
  }

  std::vector<NetId> z(k);
  for (unsigned j = 0; j < k; ++j) {
    // Publish the accumulator under stable output names.
    z[j] = nl.add_gate(GateType::kBuf, {c[j]}, "z" + std::to_string(j));
    nl.mark_output(z[j]);
  }
  nl.declare_word("X", x);
  if (!y_constant) nl.declare_word("Y", y);
  nl.declare_word("Z", z);

  if (y_constant) {
    SimplifyStats stats;
    Netlist simplified = simplify(nl, &stats);
    simplified.set_name(std::string(module_name));
    return simplified;
  }
  return nl;
}

MontgomeryHierarchy make_montgomery_hierarchy(const Gf2k& field) {
  const unsigned k = field.k();
  // R = α^k, so R² = α^{2k} mod P; the "1" input of Blk Out is the field one.
  const Gf2Poly r2 = field.alpha_pow(std::uint64_t{2} * k);
  MontgomeryHierarchy h{
      make_montmul_block(field, "blk_a_" + std::to_string(k), r2),
      make_montmul_block(field, "blk_b_" + std::to_string(k), r2),
      make_montmul_block(field, "blk_mid_" + std::to_string(k)),
      make_montmul_block(field, "blk_out_" + std::to_string(k), field.one()),
  };
  return h;
}

std::vector<NetId> instantiate_block(
    Netlist& target, const Netlist& block, std::string_view prefix,
    const std::vector<std::pair<std::string, std::vector<NetId>>>& word_bindings,
    std::string_view out_word) {
  // Map block input nets to the bound driver nets.
  std::unordered_map<NetId, NetId> remap;
  for (const auto& [word_name, drivers] : word_bindings) {
    const Word* w = block.find_word(word_name);
    assert(w != nullptr && "unknown block word");
    assert(w->bits.size() == drivers.size());
    for (std::size_t i = 0; i < w->bits.size(); ++i) {
      assert(block.gate(w->bits[i]).type == GateType::kInput);
      remap.emplace(w->bits[i], drivers[i]);
    }
  }
  for (NetId n : block.topological_order()) {
    const Netlist::Gate& g = block.gate(n);
    if (g.type == GateType::kInput) {
      assert(remap.count(n) && "unbound block input");
      continue;
    }
    std::vector<NetId> fanins;
    fanins.reserve(g.fanins.size());
    for (NetId f : g.fanins) fanins.push_back(remap.at(f));
    remap.emplace(n, target.add_gate(g.type, fanins,
                                     std::string(prefix) + g.name));
  }
  const Word* out = block.find_word(out_word);
  assert(out != nullptr);
  std::vector<NetId> bits;
  bits.reserve(out->bits.size());
  for (NetId b : out->bits) bits.push_back(remap.at(b));
  return bits;
}

Netlist make_montgomery_multiplier_flat(const Gf2k& field) {
  const unsigned k = field.k();
  const MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  Netlist nl("montgomery_" + std::to_string(k));
  std::vector<NetId> a(k), b(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  const std::vector<NetId> ar = instantiate_block(nl, h.blk_a, "ba_", {{"X", a}}, "Z");
  const std::vector<NetId> br = instantiate_block(nl, h.blk_b, "bb_", {{"X", b}}, "Z");
  const std::vector<NetId> t =
      instantiate_block(nl, h.blk_mid, "bm_", {{"X", ar}, {"Y", br}}, "Z");
  const std::vector<NetId> z = instantiate_block(nl, h.blk_out, "bo_", {{"X", t}}, "Z");

  for (NetId zn : z) nl.mark_output(zn);
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

}  // namespace gfa
