#include "circuit/massey_omura.h"

#include <string>
#include <vector>

namespace gfa {

namespace {

NetId xor_tree(Netlist& nl, std::vector<NetId> terms, const std::string& name) {
  if (terms.empty()) return nl.add_const(false, name);
  if (terms.size() == 1) return nl.add_gate(GateType::kBuf, {terms[0]}, name);
  while (terms.size() > 1) {
    std::vector<NetId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const bool last = terms.size() == 2;
      next.push_back(nl.add_gate(GateType::kXor, {terms[i], terms[i + 1]},
                                 last ? name : std::string{}));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace

Netlist make_massey_omura_multiplier(const Gf2k& field, const NormalBasis& nb) {
  const unsigned k = field.k();
  Netlist nl("massey_omura_" + std::to_string(k));
  std::vector<NetId> a(k), b(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  // Shared partial products, created lazily (λ is often sparse).
  std::vector<std::vector<NetId>> pp(k, std::vector<NetId>(k, kNoNet));
  auto product = [&](unsigned i, unsigned j) {
    if (pp[i][j] == kNoNet)
      pp[i][j] = nl.add_gate(GateType::kAnd, {a[i], b[j]},
                             "p" + std::to_string(i) + "_" + std::to_string(j));
    return pp[i][j];
  };

  std::vector<NetId> z(k);
  for (unsigned l = 0; l < k; ++l) {
    std::vector<NetId> terms;
    for (unsigned i = 0; i < k; ++i)
      for (unsigned j = 0; j < k; ++j)
        if (nb.lambda()[i][j].coeff(l)) terms.push_back(product(i, j));
    z[l] = xor_tree(nl, std::move(terms), "z" + std::to_string(l));
    nl.mark_output(z[l]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

Netlist make_normal_basis_squarer(const Gf2k& field) {
  const unsigned k = field.k();
  Netlist nl("nb_squarer_" + std::to_string(k));
  std::vector<NetId> a(k), z(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  // Squaring permutes the orbit: coordinate i moves to position i+1 (mod k).
  for (unsigned i = 0; i < k; ++i) {
    z[(i + 1) % k] = nl.add_gate(GateType::kBuf, {a[i]},
                                 "z" + std::to_string((i + 1) % k));
  }
  for (unsigned i = 0; i < k; ++i) nl.mark_output(z[i]);
  nl.declare_word("A", a);
  nl.declare_word("Z", z);
  return nl;
}

}  // namespace gfa
