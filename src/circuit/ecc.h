#pragma once
// Elliptic-curve point-operation datapaths over F_{2^k} — the workload the
// paper's introduction motivates (NIST binary curves for ECC).
//
// López–Dahab projective doubling on the curve y² + xy = x³ + ax² + b uses
// only the field primitives built in this repository:
//
//     Z3 = X1² · Z1²
//     X3 = X1⁴ + b · Z1⁴
//
// The generated circuit is a *flat* netlist with two input words (X, Z) and
// two output words (X3, Z3) — exercising the multi-output word abstraction:
// each output word is independently abstracted to its canonical polynomial,
// so the datapath is verified against the curve equations symbolically.

#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

/// Z = c·A for a field constant c: a pure XOR network (F_2-linear map).
/// Words A, Z.
Netlist make_const_multiplier(const Gf2k& field, const Gf2k::Elem& c);

/// The López–Dahab doubling datapath above, with curve parameter b.
/// Input words X, Z; output words X3, Z3.
Netlist make_ld_point_double(const Gf2k& field, const Gf2k::Elem& b);

}  // namespace gfa
