#include "circuit/mutate.h"

#include <cassert>
#include <stdexcept>

namespace gfa {

namespace {

bool is_binary_class(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kXor:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

bool is_unary_class(GateType t) {
  return t == GateType::kBuf || t == GateType::kNot;
}

// Deterministic 64-bit mix (splitmix64) for seed-keyed choices.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Netlist inject_gate_type_bug(const Netlist& netlist, NetId target,
                             GateType new_type, BugDescription* desc) {
  const GateType old_type = netlist.gate(target).type;
  const bool compatible =
      (is_binary_class(old_type) && is_binary_class(new_type)) ||
      (is_unary_class(old_type) && is_unary_class(new_type));
  if (!compatible || old_type == new_type)
    throw std::invalid_argument("incompatible gate-type mutation");
  Netlist out = netlist;
  out.mutable_gate(target).type = new_type;
  if (desc)
    desc->text = "net " + netlist.gate(target).name + ": " +
                 gate_type_name(old_type) + " -> " + gate_type_name(new_type);
  return out;
}

Netlist inject_wire_bug(const Netlist& netlist, NetId target,
                        std::size_t fanin_index, NetId new_fanin,
                        BugDescription* desc) {
  assert(fanin_index < netlist.gate(target).fanins.size());
  Netlist out = netlist;
  const NetId old_fanin = out.gate(target).fanins[fanin_index];
  if (old_fanin == new_fanin)
    throw std::invalid_argument("wire mutation is an identity");
  out.mutable_gate(target).fanins[fanin_index] = new_fanin;
  (void)out.topological_order();  // throws if the reroute created a cycle
  if (desc)
    desc->text = "net " + netlist.gate(target).name + ": fanin " +
                 netlist.gate(old_fanin).name + " -> " +
                 netlist.gate(new_fanin).name;
  return out;
}

Netlist inject_random_bug(const Netlist& netlist, std::uint64_t seed,
                          BugDescription* desc) {
  // Candidate targets: logic gates only.
  std::vector<NetId> gates;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const GateType t = netlist.gate(n).type;
    if (is_binary_class(t) || is_unary_class(t)) gates.push_back(n);
  }
  if (gates.empty()) throw std::invalid_argument("no logic gate to mutate");

  // Topological position of each net, for legal fanin reroutes.
  std::vector<std::size_t> pos(netlist.num_nets());
  {
    const auto topo = netlist.topological_order();
    for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  }

  std::uint64_t state = seed;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const NetId target = gates[mix(state) % gates.size()];
    const GateType old_type = netlist.gate(target).type;
    if (mix(state) % 2 == 0) {
      // Flip the gate function within its class.
      static constexpr GateType kBinary[] = {GateType::kAnd,  GateType::kOr,
                                             GateType::kXor,  GateType::kNand,
                                             GateType::kNor,  GateType::kXnor};
      GateType new_type;
      if (is_unary_class(old_type)) {
        new_type = old_type == GateType::kBuf ? GateType::kNot : GateType::kBuf;
      } else {
        new_type = kBinary[mix(state) % 6];
        if (new_type == old_type) continue;
      }
      return inject_gate_type_bug(netlist, target, new_type, desc);
    }
    // Reroute one fanin to an earlier net.
    const auto& fanins = netlist.gate(target).fanins;
    const std::size_t idx = mix(state) % fanins.size();
    const NetId new_fanin =
        static_cast<NetId>(mix(state) % netlist.num_nets());
    if (new_fanin == fanins[idx] || pos[new_fanin] >= pos[target]) continue;
    return inject_wire_bug(netlist, target, idx, new_fanin, desc);
  }
  throw std::runtime_error("failed to draw a legal mutation");
}

}  // namespace gfa
