#include "circuit/gate_poly.h"

#include <cassert>

namespace gfa {

MPoly gate_tail_poly(const Gf2k* field, GateType type,
                     const std::vector<VarId>& fanins) {
  const MPoly one = MPoly::constant(field, field->one());
  auto var = [&](VarId v) { return MPoly::variable(field, v); };
  switch (type) {
    case GateType::kConst0:
      return MPoly(field);
    case GateType::kConst1:
      return one;
    case GateType::kBuf:
      return var(fanins[0]);
    case GateType::kNot:
      return var(fanins[0]) + one;
    case GateType::kAnd:
    case GateType::kNand: {
      MPoly p = one;
      for (VarId f : fanins) p = p * var(f);
      return type == GateType::kNand ? p + one : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      MPoly p = one;
      for (VarId f : fanins) p = p * (var(f) + one);
      return type == GateType::kNor ? p : p + one;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      MPoly p(field);
      for (VarId f : fanins) p += var(f);
      return type == GateType::kXnor ? p + one : p;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "inputs have no tail polynomial");
  return MPoly(field);
}

CircuitIdeal circuit_ideal(const Netlist& netlist, const Gf2k* field) {
  CircuitIdeal ci;
  ci.net_var.resize(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    ci.net_var[n] = ci.pool.intern(netlist.gate(n).name, VarKind::kBit);
  for (const Word& w : netlist.words())
    ci.word_var.emplace(w.name, ci.pool.intern(w.name, VarKind::kWord));

  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    if (g.type == GateType::kInput) continue;
    std::vector<VarId> fanins;
    fanins.reserve(g.fanins.size());
    for (NetId f : g.fanins) fanins.push_back(ci.net_var[f]);
    MPoly f = MPoly::variable(field, ci.net_var[n]) +
              gate_tail_poly(field, g.type, fanins);
    ci.gate_polys.push_back(std::move(f));
  }

  for (const Word& w : netlist.words()) {
    MPoly f = MPoly::variable(field, ci.word_var.at(w.name));
    for (std::size_t i = 0; i < w.bits.size(); ++i) {
      f.add_term(Monomial(ci.net_var[w.bits[i]], BigUint(1)),
                 field->alpha_pow(static_cast<std::uint64_t>(i)));
    }
    ci.word_polys.push_back(std::move(f));
  }
  return ci;
}

std::vector<MPoly> CircuitIdeal::all_generators() const {
  std::vector<MPoly> out = gate_polys;
  out.insert(out.end(), word_polys.begin(), word_polys.end());
  return out;
}

}  // namespace gfa
