#pragma once
// Text format for netlists: parser and writer.
//
// Line-oriented, whitespace-separated, '#' comments:
//
//     module mul2
//     input a0 a1 b0 b1
//     and s0 a0 b0
//     xor z0 s0 s3
//     output z0 z1
//     word A a0 a1          # words list their bit nets LSB-first
//     word B b0 b1
//     word Z z0 z1
//     endmodule
//
// Gate lines are "<type> <output-net> <fanin...>" with types from
// gate_type_name (buf/not take one fanin, const0/const1 none, the rest two or
// more). Gates may appear in any order; the netlist is re-topologized on use.

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/netlist.h"
#include "util/status.h"

namespace gfa {

struct ParseError : std::runtime_error {
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_number(line) {}
  std::size_t line_number;
};

/// Parses the text format; throws ParseError on malformed input.
Netlist parse_netlist(std::string_view text);

/// Reads and parses a netlist file; throws on I/O or parse failure.
Netlist read_netlist_file(const std::string& path);

/// Serializes to the text format (round-trips through parse_netlist).
std::string write_netlist(const Netlist& netlist);

/// Writes the text format to a file; throws on I/O failure.
void write_netlist_file(const Netlist& netlist, const std::string& path);

/// Non-throwing variants: ParseError maps to Status kParseError (carrying the
/// line-numbered message), I/O failure to kInvalidArgument.
Result<Netlist> try_parse_netlist(std::string_view text);
Result<Netlist> try_read_netlist_file(const std::string& path);

}  // namespace gfa
