#pragma once
// Gate-level combinational netlists.
//
// A Netlist is a DAG of single-output gates over named nets. Primary inputs
// are source nets; any net can be marked as a primary output. Word-level
// structure — the grouping of bit nets into k-bit words A, B, Z with LSB-first
// significance, matching A = a_0 + a_1·α + … + a_{k-1}·α^{k-1} — is recorded
// alongside, because the abstraction engine needs the bit/word correspondence
// (paper Eqn. 1).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gfa {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = UINT32_MAX;

enum class GateType : std::uint8_t {
  kInput,   // primary input (no fanins)
  kConst0,  // constant 0 (no fanins)
  kConst1,  // constant 1 (no fanins)
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // >= 2 fanins
  kOr,      // >= 2 fanins
  kXor,     // >= 2 fanins
  kNand,    // >= 2 fanins
  kNor,     // >= 2 fanins
  kXnor,    // >= 2 fanins
};

const char* gate_type_name(GateType t);
std::optional<GateType> gate_type_from_name(std::string_view name);

/// A k-bit word: bits[i] is the net carrying coordinate i (coefficient of α^i).
struct Word {
  std::string name;
  std::vector<NetId> bits;
};

class Netlist {
 public:
  struct Gate {
    GateType type;
    std::vector<NetId> fanins;
    std::string name;  // name of the output net
  };

  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Creates a primary input net.
  NetId add_input(std::string_view name);

  /// Creates a gate driving a fresh net. Fanins must already exist.
  NetId add_gate(GateType type, const std::vector<NetId>& fanins,
                 std::string_view name = {});

  NetId add_const(bool value, std::string_view name = {});

  /// Marks an existing net as a primary output (order of calls = output order).
  void mark_output(NetId net);

  std::size_t num_nets() const { return gates_.size(); }
  const Gate& gate(NetId n) const { return gates_[n]; }
  Gate& mutable_gate(NetId n) { return gates_[n]; }

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }

  /// Gates that are neither inputs nor constants.
  std::size_t num_logic_gates() const;

  NetId find_net(std::string_view name) const;  // kNoNet if absent

  /// Declares a word over existing nets (LSB first).
  void declare_word(std::string_view name, std::vector<NetId> bits);
  const std::vector<Word>& words() const { return words_; }
  const Word* find_word(std::string_view name) const;

  /// Nets in topological order (fanins before fanouts). Construction order is
  /// already topological for programmatically built netlists; this recomputes
  /// from scratch so parsed netlists are covered too. Aborts on cycles.
  std::vector<NetId> topological_order() const;

  /// Reverse-topological level of every net: outputs get level 0, and each
  /// net's level is 1 + max over its fanouts. This is the traversal of RATO
  /// (paper Definition 5.1): smaller level = closer to the outputs = larger
  /// in the term order. Nets with no path to an output get levels past the
  /// deepest output cone.
  std::vector<unsigned> reverse_topological_levels() const;

  /// Structural checks: fanin arities, dangling fanins, acyclicity.
  /// Returns an empty string when valid, else a diagnostic.
  std::string validate() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<Word> words_;
  std::unordered_map<std::string, NetId> by_name_;
  NetId new_net(GateType type, std::vector<NetId> fanins, std::string_view name);
};

}  // namespace gfa
