#pragma once
// Mastrovito multiplier generator (the paper's Spec / golden model).
//
// Computes Z = A·B (mod P(x)) over F_{2^k} in two stages:
//   1. polynomial multiplication S = A × B: an array of k² AND partial
//      products p_{ij} = a_i·b_j summed by balanced 2-input XOR trees into
//      s_t = Σ_{i+j=t} p_{ij} for t = 0 … 2k-2;
//   2. modular reduction Z = S mod P(x): each overflow coordinate s_{k+i}
//      folds into the low coordinates through the precomputed expansion
//      α^{k+i} = Σ_j m_{ij}·α^j, realized as XOR trees.
//
// The emitted netlist has primary inputs a0…a{k-1}, b0…b{k-1}, outputs
// z0…z{k-1}, and declared words A, B, Z (LSB-first).

#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

/// Flattened gate-level Mastrovito multiplier for the given field.
Netlist make_mastrovito_multiplier(const Gf2k& field);

}  // namespace gfa
