#include "circuit/karatsuba.h"

#include <cassert>
#include <string>
#include <vector>

namespace gfa {

namespace {

/// Coefficient nets may be structurally absent (known-zero): kNoNet.
using Coeffs = std::vector<NetId>;

NetId xor2(Netlist& nl, NetId a, NetId b) {
  if (a == kNoNet) return b;
  if (b == kNoNet) return a;
  return nl.add_gate(GateType::kXor, {a, b});
}

NetId and2(Netlist& nl, NetId a, NetId b) {
  if (a == kNoNet || b == kNoNet) return kNoNet;
  return nl.add_gate(GateType::kAnd, {a, b});
}

/// out[off + i] ^= src[i].
void xor_into(Netlist& nl, Coeffs& out, const Coeffs& src, std::size_t off) {
  if (out.size() < off + src.size()) out.resize(off + src.size(), kNoNet);
  for (std::size_t i = 0; i < src.size(); ++i)
    out[off + i] = xor2(nl, out[off + i], src[i]);
}

Coeffs schoolbook(Netlist& nl, const Coeffs& a, const Coeffs& b) {
  if (a.empty() || b.empty()) return {};
  Coeffs out(a.size() + b.size() - 1, kNoNet);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i + j] = xor2(nl, out[i + j], and2(nl, a[i], b[j]));
  return out;
}

Coeffs karatsuba(Netlist& nl, const Coeffs& a, const Coeffs& b,
                 unsigned threshold) {
  const std::size_t n = std::max(a.size(), b.size());
  if (n <= threshold) return schoolbook(nl, a, b);
  const std::size_t m = n / 2;

  auto low = [&](const Coeffs& v) {
    return Coeffs(v.begin(), v.begin() + std::min(m, v.size()));
  };
  auto high = [&](const Coeffs& v) {
    return v.size() > m ? Coeffs(v.begin() + m, v.end()) : Coeffs{};
  };
  auto padded_sum = [&](const Coeffs& lo, const Coeffs& hi) {
    Coeffs out = lo;
    if (out.size() < hi.size()) out.resize(hi.size(), kNoNet);
    for (std::size_t i = 0; i < hi.size(); ++i)
      out[i] = xor2(nl, out[i], hi[i]);
    return out;
  };

  const Coeffs a0 = low(a), a1 = high(a), b0 = low(b), b1 = high(b);
  const Coeffs p0 = karatsuba(nl, a0, b0, threshold);
  const Coeffs p2 = karatsuba(nl, a1, b1, threshold);
  const Coeffs p01 = karatsuba(nl, padded_sum(a0, a1), padded_sum(b0, b1),
                               threshold);

  // middle = p01 + p0 + p2.
  Coeffs middle = p01;
  xor_into(nl, middle, p0, 0);
  xor_into(nl, middle, p2, 0);

  Coeffs out;
  xor_into(nl, out, p0, 0);
  xor_into(nl, out, middle, m);
  xor_into(nl, out, p2, 2 * m);
  return out;
}

}  // namespace

Netlist make_karatsuba_multiplier(const Gf2k& field, unsigned threshold) {
  assert(threshold >= 1);
  const unsigned k = field.k();
  Netlist nl("karatsuba_" + std::to_string(k));
  Coeffs a(k), b(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  Coeffs s = karatsuba(nl, a, b, threshold);
  s.resize(2 * k - 1, kNoNet);

  // Reduction: fold s_{k+i} through α^{k+i} mod P (as in the Mastrovito
  // generator), skipping structurally absent coefficients.
  std::vector<NetId> acc(k, kNoNet);
  for (unsigned j = 0; j < k; ++j) acc[j] = s[j];
  for (unsigned i = 0; i + k < 2 * k - 1; ++i) {
    if (s[k + i] == kNoNet) continue;
    const Gf2k::Elem red = field.alpha_pow(std::uint64_t{k} + i);
    for (unsigned j = 0; j < k; ++j)
      if (red.coeff(j)) acc[j] = xor2(nl, acc[j], s[k + i]);
  }
  std::vector<NetId> z(k);
  for (unsigned j = 0; j < k; ++j) {
    const std::string name = "z" + std::to_string(j);
    z[j] = acc[j] == kNoNet ? nl.add_const(false, name)
                            : nl.add_gate(GateType::kBuf, {acc[j]}, name);
    nl.mark_output(z[j]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

}  // namespace gfa
