#pragma once
// Montgomery multiplier generator (the paper's Impl, Fig. 1).
//
// The primitive block is the bit-serial Montgomery product of Koc–Acar:
// MontMul(X, Y) = X·Y·R^{-1} (mod P(x)) with R = α^k. Combinationally
// unrolled, iteration i computes
//
//     T = C + x_i·Y          (k AND, k XOR)
//     U = T + T[0]·P(x)      (one XOR per middle 1-bit of P)
//     C = U / x              (wiring)
//
// so the block costs O(k·(2k + weight(P))) gates. Because MontMul cannot form
// A·B directly, the full multiplier is the paper's Fig. 1 four-block network:
//
//     AR  = MontMul(A, R²)       "Blk A"   (R² constant, folded by simplify)
//     BR  = MontMul(B, R²)       "Blk B"
//     T   = MontMul(AR, BR)      "Blk Mid"
//     G   = MontMul(T, 1)        "Blk Out" ( = A·B mod P )
//
// The hierarchy is exposed both as four per-block netlists (what the paper's
// hierarchical verification consumes) and flattened into one netlist with
// words A, B, Z (what the miter-based baselines consume).

#include <optional>
#include <string_view>

#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

/// One MontMul block: inputs X and (unless `y_constant` is given) Y, output
/// word Z = X·Y·R^{-1} mod P. With `y_constant`, Y is folded in as constants
/// and the netlist is constant-propagated, which is how Blk A/B/Out get their
/// reduced sizes in the paper's Table 2.
Netlist make_montmul_block(const Gf2k& field, std::string_view module_name,
                           std::optional<Gf2Poly> y_constant = std::nullopt);

/// The Fig. 1 hierarchy. Block input words are "X"/"Y" and outputs "Z"; the
/// interconnection is fixed: blk_a/blk_b feed blk_mid, blk_mid feeds blk_out.
struct MontgomeryHierarchy {
  Netlist blk_a;
  Netlist blk_b;
  Netlist blk_mid;
  Netlist blk_out;
};

MontgomeryHierarchy make_montgomery_hierarchy(const Gf2k& field);

/// The four blocks interconnected into a single flat netlist computing
/// Z = A·B mod P, with declared words A, B, Z.
Netlist make_montgomery_multiplier_flat(const Gf2k& field);

/// Copies `block` into `target`, prefixing internal net names, driving the
/// block's input words from the given nets, and returning the nets of the
/// block's output word `out_word`.
std::vector<NetId> instantiate_block(
    Netlist& target, const Netlist& block, std::string_view prefix,
    const std::vector<std::pair<std::string, std::vector<NetId>>>& word_bindings,
    std::string_view out_word);

}  // namespace gfa
