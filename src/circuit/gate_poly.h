#pragma once
// Polynomial modeling of gate-level circuits (paper §4).
//
// Every logic gate with output x and inputs y_i becomes a generator
// f : x + tail(f) of the circuit ideal J, where tail(f) is the Boolean
// function expressed over F_2 ⊂ F_{2^k}:
//
//     z = NOT y   ->  z + y + 1
//     z = AND(y…) ->  z + ∏ y_i
//     z = OR(y…)  ->  z + 1 + ∏ (1 + y_i)
//     z = XOR(y…) ->  z + Σ y_i          (and the N-variants add 1)
//
// Each declared word W over bits w_0…w_{k-1} adds the word-definition
// polynomial  w_0 + w_1·α + … + w_{k-1}·α^{k-1} + W  (paper Eqn. 1).
//
// This is the MPoly (general-engine) modeling used by the worked examples and
// the baselines; the abstraction hot path builds the same tails directly in
// the specialized BitPoly representation (src/abstraction/extractor.h).

#include <unordered_map>
#include <vector>

#include "circuit/netlist.h"
#include "poly/mpoly.h"
#include "poly/varpool.h"

namespace gfa {

struct CircuitIdeal {
  VarPool pool;
  std::vector<VarId> net_var;  // bit variable per NetId
  std::unordered_map<std::string, VarId> word_var;  // word name -> variable
  std::vector<MPoly> gate_polys;  // one per logic gate, in netlist order
  std::vector<MPoly> word_polys;  // one per declared word

  /// gate_polys ++ word_polys — the generators of J.
  std::vector<MPoly> all_generators() const;
};

/// Builds the ideal generators of a circuit over the given field.
CircuitIdeal circuit_ideal(const Netlist& netlist, const Gf2k* field);

/// The tail polynomial of a single gate (the Boolean function of its inputs),
/// given the fanin bit variables.
MPoly gate_tail_poly(const Gf2k* field, GateType type,
                     const std::vector<VarId>& fanins);

}  // namespace gfa
