#pragma once
// Additional Galois-field datapath generators beyond the two multiplier
// architectures: squarer, adder, and multiply-accumulate. These exercise the
// parts of the theory the multiplier benchmarks do not — linear (Frobenius)
// functions, multi-operand word signatures Z = F(A, B, C), and compositions
// used by the ECC point-operation style workloads the paper's introduction
// motivates.

#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

/// Z = A² mod P: the squaring map is F_2-linear, so the circuit is a pure
/// XOR network over the precomputed α^{2i} expansions. Words A, Z.
Netlist make_squarer(const Gf2k& field);

/// Z = A + B: bitwise XOR. Words A, B, Z.
Netlist make_adder(const Gf2k& field);

/// Z = A·B + C mod P: Mastrovito product folded with a third operand before
/// the reduction network. Words A, B, C, Z.
Netlist make_multiply_accumulate(const Gf2k& field);

/// Z = A^{2^e} mod P by cascading e squarers (e >= 1). Words A, Z.
Netlist make_frobenius_power(const Gf2k& field, unsigned e);

}  // namespace gfa
