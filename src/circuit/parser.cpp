#include "circuit/parser.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace gfa {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) toks.push_back(std::move(cur)), cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) toks.push_back(std::move(cur));
  return toks;
}

struct GateDecl {
  GateType type;
  std::vector<std::string> fanins;
  std::size_t line;
};

}  // namespace

Netlist parse_netlist(std::string_view text) {
  std::unordered_map<std::string, GateDecl> decls;  // net name -> definition
  std::vector<std::string> decl_order;
  std::vector<std::pair<std::string, std::size_t>> output_names;
  std::vector<std::pair<std::string, std::vector<std::string>>> word_decls;
  std::string module_name = "top";

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    auto declare = [&](const std::string& name, GateDecl decl) {
      if (decls.count(name))
        throw ParseError(line_no, "net '" + name + "' defined twice");
      decls.emplace(name, std::move(decl));
      decl_order.push_back(name);
    };

    if (kw == "module") {
      if (toks.size() != 2) throw ParseError(line_no, "module expects a name");
      module_name = toks[1];
    } else if (kw == "endmodule") {
      // no-op; single-module format
    } else if (kw == "input") {
      for (std::size_t i = 1; i < toks.size(); ++i)
        declare(toks[i], GateDecl{GateType::kInput, {}, line_no});
    } else if (kw == "output") {
      if (toks.size() < 2) throw ParseError(line_no, "output expects net names");
      for (std::size_t i = 1; i < toks.size(); ++i)
        output_names.emplace_back(toks[i], line_no);
    } else if (kw == "word") {
      if (toks.size() < 3)
        throw ParseError(line_no, "word expects a name and at least one bit");
      word_decls.emplace_back(
          toks[1], std::vector<std::string>(toks.begin() + 2, toks.end()));
    } else if (auto type = gate_type_from_name(kw)) {
      if (*type == GateType::kInput)
        throw ParseError(line_no, "use the 'input' directive for inputs");
      if (toks.size() < 2) throw ParseError(line_no, "gate expects an output net");
      const std::size_t arity = toks.size() - 2;
      const bool unary = *type == GateType::kBuf || *type == GateType::kNot;
      const bool source = *type == GateType::kConst0 || *type == GateType::kConst1;
      if (source && arity != 0)
        throw ParseError(line_no, "constant gate takes no fanins");
      if (unary && arity != 1)
        throw ParseError(line_no, std::string(kw) + " takes exactly one fanin");
      if (!source && !unary && arity < 2)
        throw ParseError(line_no, std::string(kw) + " takes at least two fanins");
      declare(toks[1], GateDecl{*type,
                                std::vector<std::string>(toks.begin() + 2, toks.end()),
                                line_no});
    } else {
      throw ParseError(line_no, "unknown directive '" + kw + "'");
    }
  }

  // Emit nets in dependency order (gate lines may be out of order). An
  // explicit work stack rather than recursion: a pathological but legal
  // input — say a 100k-deep buf chain — must not overflow the call stack
  // (found by tools/fuzz_parser).
  Netlist netlist(module_name);
  std::unordered_map<std::string, NetId> emitted;
  std::unordered_map<std::string, char> visiting;  // 1 = on the DFS stack
  struct Frame {
    const std::string* name;
    const GateDecl* decl;
    std::size_t next_fanin = 0;
  };
  std::vector<Frame> stack;
  auto open = [&](const std::string& name) {
    if (emitted.count(name)) return;
    auto dit = decls.find(name);
    if (dit == decls.end())
      throw ParseError(0, "net '" + name + "' used but never defined");
    if (visiting[name])
      throw ParseError(dit->second.line,
                       "combinational cycle through '" + name + "'");
    visiting[name] = 1;
    stack.push_back({&dit->first, &dit->second});
  };
  for (const std::string& root : decl_order) {
    open(root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_fanin < f.decl->fanins.size()) {
        open(f.decl->fanins[f.next_fanin++]);
        continue;
      }
      std::vector<NetId> fanins;
      fanins.reserve(f.decl->fanins.size());
      for (const std::string& fn : f.decl->fanins)
        fanins.push_back(emitted.at(fn));
      const NetId id = f.decl->type == GateType::kInput
                           ? netlist.add_input(*f.name)
                           : netlist.add_gate(f.decl->type, fanins, *f.name);
      emitted.emplace(*f.name, id);
      visiting[*f.name] = 0;
      stack.pop_back();
    }
  }

  for (const auto& [name, line] : output_names) {
    const NetId n = netlist.find_net(name);
    if (n == kNoNet) throw ParseError(line, "output net '" + name + "' undefined");
    netlist.mark_output(n);
  }
  for (const auto& [name, bit_names] : word_decls) {
    std::vector<NetId> bits;
    bits.reserve(bit_names.size());
    for (const std::string& b : bit_names) {
      const NetId n = netlist.find_net(b);
      if (n == kNoNet) throw ParseError(0, "word bit '" + b + "' undefined");
      bits.push_back(n);
    }
    netlist.declare_word(name, std::move(bits));
  }
  return netlist;
}

Netlist read_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netlist file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_netlist(buf.str());
}

std::string write_netlist(const Netlist& netlist) {
  std::ostringstream out;
  out << "module " << netlist.name() << "\n";
  if (!netlist.inputs().empty()) {
    out << "input";
    for (NetId n : netlist.inputs()) out << " " << netlist.gate(n).name;
    out << "\n";
  }
  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    if (g.type == GateType::kInput) continue;
    out << gate_type_name(g.type) << " " << g.name;
    for (NetId f : g.fanins) out << " " << netlist.gate(f).name;
    out << "\n";
  }
  if (!netlist.outputs().empty()) {
    out << "output";
    for (NetId n : netlist.outputs()) out << " " << netlist.gate(n).name;
    out << "\n";
  }
  for (const Word& w : netlist.words()) {
    out << "word " << w.name;
    for (NetId b : w.bits) out << " " << netlist.gate(b).name;
    out << "\n";
  }
  out << "endmodule\n";
  return out.str();
}

void write_netlist_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write netlist file: " + path);
  out << write_netlist(netlist);
}

Result<Netlist> try_parse_netlist(std::string_view text) {
  try {
    return parse_netlist(text);
  } catch (const ParseError& e) {
    return Status::parse_error(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<Netlist> try_read_netlist_file(const std::string& path) {
  try {
    return read_netlist_file(path);
  } catch (const ParseError& e) {
    return Status::parse_error(path + ": " + e.what());
  } catch (const std::runtime_error& e) {
    return Status::invalid_argument(e.what());  // I/O failure
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
