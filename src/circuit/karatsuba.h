#pragma once
// Karatsuba multiplier over F_{2^k} — a third, recursively structured
// architecture for the equivalence benchmarks.
//
// The carry-free product S = A × B is computed by Karatsuba splitting
// (A0 + x^m·A1)(B0 + x^m·B1) = P0 + x^m·(P01 + P0 + P2) + x^{2m}·P2 with
// P01 = (A0+A1)(B0+B1), recursing until a schoolbook threshold; S is then
// reduced mod P(x) through the same folding network as the Mastrovito
// generator. The resulting netlist shares *no* structure with either the
// Mastrovito array or the Montgomery block design — the hardest kind of
// instance for structural equivalence checking (paper §2), and routine for
// canonical-form abstraction.

#include "circuit/netlist.h"
#include "gf/gf2k.h"

namespace gfa {

/// Flattened Karatsuba multiplier: words A, B, Z; Z = A·B mod P(x).
/// `threshold` is the sub-size at which recursion falls back to schoolbook.
Netlist make_karatsuba_multiplier(const Gf2k& field, unsigned threshold = 4);

}  // namespace gfa
