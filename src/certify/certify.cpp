#include "certify/certify.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "abstraction/rato.h"
#include "circuit/sim.h"
#include "obs/flight_recorder.h"
#include "util/fault_inject.h"

namespace gfa::certify {

namespace {

/// Input words shared by both circuits, matched by name against `impl`
/// (the same pairing make_miter performs). Throws std::invalid_argument on
/// a missing or width-mismatched word.
struct WordPairing {
  std::vector<const Word*> spec_in;
  std::vector<const Word*> impl_in;
  const Word* spec_out;
  const Word* impl_out;
};

WordPairing pair_words(const Netlist& spec, const Netlist& impl) {
  WordPairing p;
  p.spec_in = input_words(spec);
  p.spec_out = output_word(spec);
  p.impl_out = output_word(impl);
  if (p.spec_out == nullptr || p.impl_out == nullptr)
    throw std::invalid_argument("both circuits need a sole output word");
  if (p.spec_out->bits.size() != p.impl_out->bits.size())
    throw std::invalid_argument("output word widths differ");
  p.impl_in.reserve(p.spec_in.size());
  for (const Word* w : p.spec_in) {
    const Word* w2 = impl.find_word(w->name);
    if (w2 == nullptr || w2->bits.size() != w->bits.size())
      throw std::invalid_argument("input word '" + w->name + "' mismatch");
    p.impl_in.push_back(w2);
  }
  return p;
}

/// One simulator pass over both circuits with the given per-word lanes;
/// returns the first lane whose outputs disagree, or npos.
std::size_t first_mismatched_lane(
    const Netlist& spec, const Netlist& impl, const WordPairing& p,
    const std::vector<std::vector<Gf2Poly>>& lanes,
    std::vector<Gf2Poly>* spec_out, std::vector<Gf2Poly>* impl_out) {
  std::vector<std::pair<const Word*, std::vector<Gf2Poly>>> spec_ins;
  std::vector<std::pair<const Word*, std::vector<Gf2Poly>>> impl_ins;
  spec_ins.reserve(lanes.size());
  impl_ins.reserve(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    spec_ins.emplace_back(p.spec_in[i], lanes[i]);
    impl_ins.emplace_back(p.impl_in[i], lanes[i]);
  }
  *spec_out = simulate_words(spec, *p.spec_out, spec_ins);
  *impl_out = simulate_words(impl, *p.impl_out, impl_ins);
  for (std::size_t l = 0; l < spec_out->size(); ++l)
    if ((*spec_out)[l] != (*impl_out)[l]) return l;
  return static_cast<std::size_t>(-1);
}

Witness witness_of_lane(const WordPairing& p,
                        const std::vector<std::vector<Gf2Poly>>& lanes,
                        std::size_t lane) {
  Witness w;
  for (std::size_t i = 0; i < lanes.size(); ++i)
    w[p.spec_in[i]->name] = lanes[i][lane];
  return w;
}

}  // namespace

std::uint64_t ElemRng::next_u64() {
  // splitmix64: deterministic, seedable, and stateless across platforms.
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Gf2k::Elem ElemRng::next_elem(const Gf2k& field) {
  const std::size_t nwords = (field.k() + 63) / 64;
  std::vector<std::uint64_t> words(nwords);
  for (std::uint64_t& w : words) w = next_u64();
  return field.reduce(Gf2Poly::from_words(words.data(), words.size()));
}

Gf2k::Elem eval_word_function(const WordFunction& fn, const Gf2k& /*field*/,
                              const Witness& w) {
  return fn.g.eval([&](VarId v) -> Gf2k::Elem {
    const std::string& name = fn.pool.name(v);
    const auto it = w.find(name);
    if (it == w.end())
      throw std::invalid_argument("witness assigns no value to word '" + name +
                                  "'");
    return it->second;
  });
}

std::optional<Witness> find_word_function_witness(const WordFunction& spec_fn,
                                                  const WordFunction& impl_fn,
                                                  const Gf2k& field,
                                                  unsigned max_points,
                                                  std::uint64_t seed) {
  std::vector<std::string> names = spec_fn.input_words;
  for (const std::string& n : impl_fn.input_words)
    if (std::find(names.begin(), names.end(), n) == names.end())
      names.push_back(n);
  ElemRng rng(seed);
  for (unsigned i = 0; i < max_points; ++i) {
    Witness w;
    for (const std::string& n : names) w[n] = rng.next_elem(field);
    if (eval_word_function(spec_fn, field, w) !=
        eval_word_function(impl_fn, field, w))
      return w;
  }
  return std::nullopt;
}

std::optional<Witness> find_simulation_witness(const Netlist& spec,
                                               const Netlist& impl,
                                               const Gf2k& field,
                                               unsigned max_rounds,
                                               std::uint64_t seed) {
  const WordPairing p = pair_words(spec, impl);
  if (p.spec_in.empty()) return std::nullopt;  // constant circuits: no inputs
  std::size_t total_bits = 0;
  for (const Word* w : p.spec_in) total_bits += w->bits.size();

  std::vector<std::vector<Gf2Poly>> lanes(p.spec_in.size());
  std::vector<Gf2Poly> so, io;
  if (total_bits <= 20) {
    // Exhaustive: pack a global counter's bits into the input words, so a
    // truly non-equivalent small instance can never evade the search.
    const std::uint64_t limit = std::uint64_t{1} << total_bits;
    for (std::uint64_t base = 0; base < limit; base += 64) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(64, limit - base));
      for (std::size_t i = 0; i < lanes.size(); ++i) lanes[i].assign(n, {});
      for (std::size_t l = 0; l < n; ++l) {
        std::uint64_t c = base + l;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          const std::size_t width = p.spec_in[i]->bits.size();
          lanes[i][l] = Gf2Poly::from_bits(c & ((std::uint64_t{1} << width) - 1));
          c >>= width;
        }
      }
      const std::size_t hit = first_mismatched_lane(spec, impl, p, lanes, &so, &io);
      if (hit != static_cast<std::size_t>(-1))
        return witness_of_lane(p, lanes, hit);
    }
    return std::nullopt;
  }

  ElemRng rng(seed);
  for (unsigned round = 0; round < max_rounds; ++round) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      lanes[i].resize(64);
      for (std::size_t l = 0; l < 64; ++l) lanes[i][l] = rng.next_elem(field);
    }
    const std::size_t hit = first_mismatched_lane(spec, impl, p, lanes, &so, &io);
    if (hit != static_cast<std::size_t>(-1))
      return witness_of_lane(p, lanes, hit);
  }
  return std::nullopt;
}

Witness witness_from_bits(const Netlist& netlist,
                          const std::vector<bool>& bits) {
  if (bits.size() < netlist.inputs().size())
    throw std::invalid_argument("bit assignment shorter than the input list");
  std::vector<std::size_t> pos(netlist.num_nets(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
    pos[netlist.inputs()[i]] = i;
  Witness w;
  for (const Word* word : input_words(netlist)) {
    Gf2Poly elem;
    for (std::size_t bit = 0; bit < word->bits.size(); ++bit) {
      const std::size_t at = pos[word->bits[bit]];
      if (at == static_cast<std::size_t>(-1))
        throw std::invalid_argument("word bit is not a primary input");
      if (bits[at]) elem.set_coeff(static_cast<unsigned>(bit), true);
    }
    w[word->name] = std::move(elem);
  }
  return w;
}

Counterexample replay_witness(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field, const Witness& w) {
  const WordPairing p = pair_words(spec, impl);
  std::vector<std::vector<Gf2Poly>> lanes(p.spec_in.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const auto it = w.find(p.spec_in[i]->name);
    if (it == w.end())
      throw std::invalid_argument("witness assigns no value to word '" +
                                  p.spec_in[i]->name + "'");
    lanes[i] = {it->second};
  }
  Counterexample cx;
  for (const auto& [name, elem] : w) cx.inputs[name] = field.to_string(elem);
  cx.output_word = p.spec_out->name;
  if (lanes.empty()) return cx;  // no inputs: nothing to simulate
  std::vector<Gf2Poly> so, io;
  const std::size_t hit = first_mismatched_lane(spec, impl, p, lanes, &so, &io);
  cx.expected = field.to_string(so[0]);
  cx.actual = field.to_string(io[0]);
  cx.replayed = hit == 0;
  return cx;
}

CertifyOutcome certify_equivalence(const Netlist& spec, const Netlist& impl,
                                   const Gf2k& field, unsigned rounds,
                                   std::uint64_t seed) {
  CertifyOutcome out;
  const bool forced = fault::consume("certify:mismatch");
  const WordPairing p = pair_words(spec, impl);
  if (p.spec_in.empty() && !forced) return out;  // nothing to sample

  ElemRng rng(seed);
  std::vector<std::vector<Gf2Poly>> lanes(p.spec_in.size());
  std::vector<Gf2Poly> so, io;
  for (unsigned round = 0; round < rounds; ++round) {
    std::size_t hit = static_cast<std::size_t>(-1);
    if (!p.spec_in.empty()) {
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i].resize(64);
        for (std::size_t l = 0; l < 64; ++l) lanes[i][l] = rng.next_elem(field);
      }
      hit = first_mismatched_lane(spec, impl, p, lanes, &so, &io);
      out.points += 64;
    }
    if (forced && round == 0 && hit == static_cast<std::size_t>(-1)) hit = 0;
    if (hit == static_cast<std::size_t>(-1)) continue;

    obs::flight::note("certify:mismatch", round, static_cast<std::uint64_t>(hit));
    obs::flight::note("certify:points", out.points);
    std::string detail =
        "equivalence cross-check disagreed on output word '" +
        p.spec_out->name + "'";
    if (!lanes.empty() && !lanes[0].empty()) {
      const Witness w = witness_of_lane(p, lanes, hit);
      detail += " at";
      for (const auto& [name, elem] : w)
        detail += " " + name + "=" + field.to_string(elem);
      if (!so.empty() && !io.empty())
        detail += ": spec=" + field.to_string(so[hit]) +
                  ", impl=" + field.to_string(io[hit]);
    }
    if (forced) detail += " (injected via certify:mismatch)";
    out.status = Status::certification_failed(std::move(detail));
    return out;
  }
  return out;
}

}  // namespace gfa::certify
