#pragma once
// Verdict certification: every answer the engine layer produces is made
// self-checking (DESIGN.md "Verdict certification").
//
//  * kNotEquivalent must come with a witness. The abstraction engine finds
//    one by Schwartz–Zippel sampling of the two canonical word polynomials;
//    SAT/BDD/fraig hand over their satisfying assignments; anything else
//    falls back to random (exhaustive for small inputs) simulation search.
//    Either way the witness is replayed through the bit-parallel simulator —
//    a code path independent of every proof engine — before it is reported.
//  * kEquivalent is cross-checked (opt-in via RunOptions::certify): N×64
//    lanes of random inputs are simulated through both circuits; any
//    disagreement is kCertificationFailed (exit 73) with a flight-recorder
//    dump — a loud internal error, never a silent wrong answer. The
//    `certify:mismatch` fault site forces the disagreement deterministically.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "abstraction/extractor.h"
#include "certify/counterexample.h"
#include "circuit/netlist.h"
#include "gf/gf2k.h"
#include "util/status.h"

namespace gfa::certify {

/// A witness in machine form: input word name -> field element.
using Witness = std::map<std::string, Gf2k::Elem>;

/// Deterministic stream of field elements (splitmix64-filled coordinate
/// words, reduced into the field) — independent of any engine's internals.
class ElemRng {
 public:
  explicit ElemRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64();
  Gf2k::Elem next_elem(const Gf2k& field);

 private:
  std::uint64_t state_;
};

/// Evaluates fn.g at the witness point; `w` must cover every input word the
/// polynomial mentions (missing names throw std::invalid_argument).
Gf2k::Elem eval_word_function(const WordFunction& fn, const Gf2k& field,
                              const Witness& w);

/// Schwartz–Zippel search on two word functions known to differ: samples
/// random points until their evaluations disagree. Returns std::nullopt if
/// `max_points` samples all agree (the caller then falls back to
/// find_simulation_witness).
std::optional<Witness> find_word_function_witness(const WordFunction& spec_fn,
                                                  const WordFunction& impl_fn,
                                                  const Gf2k& field,
                                                  unsigned max_points = 4096,
                                                  std::uint64_t seed = 0x5EEDC0DEDA7Aull);

/// Witness search directly on the circuits, 64 lanes per simulator pass.
/// Inputs of up to 20 total bits are enumerated exhaustively (so a
/// genuinely non-equivalent small instance always yields a witness);
/// larger instances sample `max_rounds`×64 random points.
std::optional<Witness> find_simulation_witness(const Netlist& spec,
                                               const Netlist& impl,
                                               const Gf2k& field,
                                               unsigned max_rounds = 256,
                                               std::uint64_t seed = 0x5EEDC0DEDA7Aull);

/// Groups a bit assignment over netlist.inputs() (a SAT/BDD/fraig model of
/// the miter's shared inputs) into field elements per input word.
Witness witness_from_bits(const Netlist& netlist, const std::vector<bool>& bits);

/// Replays the witness through the simulator on both circuits and renders
/// the result. `replayed` is true iff the simulated outputs disagree — i.e.
/// the witness genuinely distinguishes the circuits.
Counterexample replay_witness(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field, const Witness& w);

struct CertifyOutcome {
  /// OK when every sampled point agreed; kCertificationFailed otherwise.
  Status status;
  /// Points simulated (lanes × rounds).
  std::uint64_t points = 0;
};

/// Post-kEquivalent cross-check: `rounds`×64 lanes of random inputs through
/// both circuits. A disagreement (or a consumed `certify:mismatch` fault)
/// notes the offending point on the flight recorder and returns
/// kCertificationFailed.
CertifyOutcome certify_equivalence(const Netlist& spec, const Netlist& impl,
                                   const Gf2k& field, unsigned rounds = 4,
                                   std::uint64_t seed = 0xCE7211F1CA7Eull);

}  // namespace gfa::certify
