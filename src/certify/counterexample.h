#pragma once
// The typed counterexample carried by every kNotEquivalent verdict.
//
// A Counterexample is the report-facing form of a distinguishing input:
// field elements (rendered via Gf2k::to_string) for every input word, the
// two disagreeing output elements, and whether the bit-parallel simulator
// (src/circuit/sim.h) has independently confirmed the disagreement. The
// machine form used to search for and replay witnesses lives in
// src/certify/certify.h; this header is dependency-free so the engine
// layer's VerifyResult can embed the type without a layering cycle.

#include <map>
#include <string>

namespace gfa::certify {

struct Counterexample {
  /// Input word name -> field element, e.g. {"A": "α^3 + 1", "B": "α"}.
  std::map<std::string, std::string> inputs;
  /// The output word the two circuits disagree on.
  std::string output_word;
  /// The spec's output element at `inputs`.
  std::string expected;
  /// The impl's output element at `inputs` (differs from `expected`).
  std::string actual;
  /// True once simulator replay confirmed spec(inputs) != impl(inputs).
  bool replayed = false;

  bool empty() const { return inputs.empty(); }
};

}  // namespace gfa::certify
