#include "util/json_reader.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace gfa {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status error(const std::string& what) const {
    return Status::parse_error("JSON: " + what + " at offset " +
                               std::to_string(pos));
  }

  Status parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (at_end()) return error("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (Status st = parse_string(s); !st.ok()) return st;
        out = JsonValue::make_string(std::move(s));
        return Status();
      }
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          out = JsonValue::make_bool(true);
          return Status();
        }
        return error("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          out = JsonValue::make_bool(false);
          return Status();
        }
        return error("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          out = JsonValue::make_null();
          return Status();
        }
        return error("bad literal");
      default:
        return parse_number(out);
    }
  }

  Status parse_object(JsonValue& out, int depth) {
    ++pos;  // '{'
    out = JsonValue::make_object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return Status();
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return error("expected object key");
      std::string key;
      if (Status st = parse_string(key); !st.ok()) return st;
      skip_ws();
      if (at_end() || peek() != ':') return error("expected ':'");
      ++pos;
      JsonValue value;
      if (Status st = parse_value(value, depth + 1); !st.ok()) return st;
      out.mutable_members().emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return error("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return Status();
      }
      return error("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue& out, int depth) {
    ++pos;  // '['
    out = JsonValue::make_array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return Status();
    }
    for (;;) {
      JsonValue value;
      if (Status st = parse_value(value, depth + 1); !st.ok()) return st;
      out.mutable_items().push_back(std::move(value));
      skip_ws();
      if (at_end()) return error("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return Status();
      }
      return error("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + i];
      unsigned d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return error("bad \\u escape");
      v = (v << 4) | d;
    }
    pos += 4;
    out = v;
    return Status();
  }

  Status parse_string(std::string& out) {
    ++pos;  // opening quote
    out.clear();
    while (!at_end()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return Status();
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return error("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos;
      if (at_end()) return error("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp;
          if (Status st = parse_hex4(cp); !st.ok()) return st;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a following \uDC00-\uDFFF pair.
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u')
              return error("lone high surrogate");
            pos += 2;
            unsigned lo;
            if (Status st = parse_hex4(lo); !st.ok()) return st;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return error("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return error("bad escape character");
      }
    }
    return error("unterminated string");
  }

  bool digit_at(std::size_t p) const {
    return p < text.size() && text[p] >= '0' && text[p] <= '9';
  }

  Status parse_number(JsonValue& out) {
    // Walk the strict JSON number grammar — -?(0|[1-9]\d*)(\.\d+)?([eE][+-]?\d+)?
    // — so forms strtod tolerates ("01", "1.", "+1", "0x2") stay rejected.
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    if (!digit_at(pos)) return error("expected a value");
    if (peek() == '0')
      ++pos;  // a leading zero stands alone
    else
      while (digit_at(pos)) ++pos;
    if (!at_end() && peek() == '.') {
      ++pos;
      if (!digit_at(pos)) return error("expected digits after '.'");
      while (digit_at(pos)) ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digit_at(pos)) return error("expected exponent digits");
      while (digit_at(pos)) ++pos;
    }
    const std::string slice(text.substr(start, pos - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || errno == ERANGE ||
        !std::isfinite(v)) {
      pos = start;
      return error("bad number '" + slice + "'");
    }
    out = JsonValue::make_number(v);
    return Status();
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  const double n = v->as_number();
  if (n < 0 || n > 1.8e19) return fallback;
  return static_cast<std::uint64_t>(n);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

Result<JsonValue> parse_json(std::string_view text) {
  Parser p{text};
  JsonValue out;
  if (Status st = p.parse_value(out, 0); !st.ok()) return st;
  p.skip_ws();
  if (!p.at_end()) return p.error("trailing data after the document");
  return out;
}

}  // namespace gfa
