#include "util/json_writer.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <locale>

namespace gfa {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  // JSON is locale-independent by definition; the caller's stream may carry
  // an imbued or global locale whose num_put would emit grouped integers
  // ("1.234.567") — pin the classic "C" locale for the document's lifetime.
  out_.imbue(std::locale::classic());
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i)
    out_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    assert(root_values_ == 0 && "multiple top-level JSON values");
    ++root_values_;
    return;
  }
  Level& top = stack_.back();
  if (top.scope == Scope::kObject) {
    assert(top.key_pending && "object value requires a preceding key()");
    top.key_pending = false;
    return;  // comma/indent were written by key()
  }
  if (top.count > 0) out_ << ',';
  newline_indent();
  ++top.count;
}

void JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().scope == Scope::kObject &&
         "key() outside an object");
  Level& top = stack_.back();
  assert(!top.key_pending && "two keys in a row");
  if (top.count > 0) out_ << ',';
  newline_indent();
  ++top.count;
  top.key_pending = true;
  out_ << '"' << escape(k) << "\":";
  if (indent_ > 0) out_ << ' ';
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({Scope::kObject});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().scope == Scope::kObject);
  assert(!stack_.back().key_pending && "key() without a value");
  const bool had_elements = stack_.back().count > 0;
  stack_.pop_back();
  if (had_elements) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({Scope::kArray});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().scope == Scope::kArray);
  const bool had_elements = stack_.back().count > 0;
  stack_.pop_back();
  if (had_elements) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view v) {
  before_value();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    out_ << "null";
    return;
  }
  // std::to_chars is the shortest round-trip form and, unlike the printf
  // family, immune to the process locale's decimal separator (a German
  // locale would otherwise emit "1,5" — invalid JSON).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  assert(res.ec == std::errc());
  out_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

}  // namespace gfa
