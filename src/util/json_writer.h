#pragma once
// Minimal streaming JSON writer: nested objects/arrays, correct string
// escaping, locale-independent number formatting.
//
// Shared by the bench reporters (BENCH_<name>.json) and the engine layer's
// run reports (gfa_tool --report=<file>), replacing the ad-hoc writer that
// used to live in bench/bench_util.h and could emit invalid JSON for any
// string containing a quote or backslash.
//
// Usage:
//   JsonWriter w(out);
//   w.begin_object();
//   w.member("engine", "sat");
//   w.member("wall_ms", 12.5);
//   w.key("stats"); w.begin_array(); w.value(1.0); w.end_array();
//   w.end_object();
//
// Commas, newlines, and indentation are handled by the writer; mismatched
// begin/end or a value without a key inside an object assert.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gfa {

class JsonWriter {
 public:
  /// Writes onto `out`; `indent` spaces per nesting level (0 = compact).
  /// Imbues `out` with the classic "C" locale so numbers are emitted
  /// locale-independently (the imbue persists on the stream).
  explicit JsonWriter(std::ostream& out, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or container.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void member(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// JSON string-escapes `s` (without the surrounding quotes): ", \, control
  /// characters; other bytes pass through (UTF-8 stays UTF-8).
  static std::string escape(std::string_view s);

 private:
  enum class Scope { kObject, kArray };
  struct Level {
    Scope scope;
    std::size_t count = 0;   // elements emitted at this level
    bool key_pending = false;  // object: key() written, value not yet
  };

  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  std::vector<Level> stack_;
  std::size_t root_values_ = 0;
};

}  // namespace gfa
