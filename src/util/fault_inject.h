#pragma once
// Deterministic fault injection for robustness tests.
//
// Production code marks its fallible hot spots with GFA_FAULT_POINT("site");
// a test (or the GFA_INJECT=site:n environment variable) arms exactly one
// site to fire on its Nth hit, after which the site throws the failure the
// real world would produce there — std::bad_alloc for "oom:*" sites,
// StatusError(kResourceExhausted) for "budget:*" sites, and
// StatusError(kCancelled) for "cancel:checkpoint". Every registered site is
// swept by tests/fault_inject_test.cpp to prove each engine unwinds to a
// clean Status from OOM/cancel at every counted allocation point.
//
// The framework is compiled in when GFA_FAULT_INJECTION is defined (the
// default for dev/ASan builds; Release CI turns it off): GFA_FAULT_POINT then
// costs one relaxed atomic load when nothing is armed. When compiled out the
// macro expands to nothing and arm() reports kUnsupported, so release
// binaries carry zero overhead and cannot be sabotaged via the environment.

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gfa::fault {

/// True when the framework was compiled in (GFA_FAULT_INJECTION defined).
bool compiled_in();

namespace detail {
/// The armed/disarmed gate, exposed here so enabled() inlines into hot loops
/// (the rewriter's add path hits it once per term mutation). All other
/// injection state stays in fault_inject.cpp.
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True while some site is armed and has not yet fired. One relaxed atomic
/// load, inline; the macro uses it as the fast-path gate.
inline bool enabled() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Hot-path hook: fires the armed fault if `site` matches and this is the
/// Nth hit since arming. No-op (after the `enabled()` gate) otherwise.
/// `site` must be one of registered_sites().
void point(const char* site);

/// Non-throwing variant for sites whose failure is *enacted by the caller*
/// rather than thrown here: the worker supervisor ("worker:crash",
/// "worker:hang" — the parent decides per attempt, so one-shot semantics
/// survive retries across forked children) and the checkpoint writer
/// ("checkpoint:corrupt"). Counts a hit against the armed site and returns
/// true exactly when this hit is the Nth — the caller then produces the
/// failure. Always false when compiled out or when another site is armed.
bool consume(const char* site);

/// Arms `site` to fire on its `n`th hit (n >= 1). Replaces any previous
/// arming and resets the hit counter. Errors: kInvalidArgument for an
/// unregistered site or n == 0, kUnsupported when compiled out.
Status arm(std::string_view site, std::uint64_t n);

/// Arms from a "site:n" spec (the GFA_INJECT / --inject syntax); a bare
/// "site" means "site:1".
Status arm_spec(std::string_view spec);

/// Disarms any armed site. Safe to call when nothing is armed.
void disarm();

/// True once the armed fault has actually fired (sticky until re-arm/disarm).
bool fired();

/// Number of times the armed site has been hit since arming (fired or not).
std::uint64_t hits();

/// All registered site names, for sweeps and `--inject help` listings.
const std::vector<std::string_view>& registered_sites();

#if defined(GFA_FAULT_INJECTION)
#define GFA_FAULT_POINT(site)                         \
  do {                                                \
    if (::gfa::fault::enabled()) ::gfa::fault::point(site); \
  } while (0)
#else
#define GFA_FAULT_POINT(site) \
  do {                        \
  } while (0)
#endif

}  // namespace gfa::fault
