#include "util/parse_number.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace gfa {

namespace {

std::string quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

Result<std::uint64_t> parse_u64(std::string_view text, std::uint64_t min,
                                std::uint64_t max) {
  if (text.empty())
    return Status::parse_error("expected a number, got empty string");
  for (char c : text) {
    if (c < '0' || c > '9')
      return Status::parse_error("expected an unsigned integer, got " +
                                 quoted(text));
  }
  // All-digit input: only overflow can fail now.
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0')
    return Status::parse_error("number out of range: " + quoted(text));
  if (v < min || v > max)
    return Status::parse_error(quoted(text) + " is outside [" +
                               std::to_string(min) + ", " +
                               std::to_string(max) + "]");
  return static_cast<std::uint64_t>(v);
}

Result<unsigned> parse_unsigned(std::string_view text, unsigned min,
                                unsigned max) {
  Result<std::uint64_t> r = parse_u64(text, min, max);
  if (!r.ok()) return r.status();
  return static_cast<unsigned>(*r);
}

Result<double> parse_double(std::string_view text, double min, double max) {
  if (text.empty())
    return Status::parse_error("expected a number, got empty string");
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v))
    return Status::parse_error("expected a finite number, got " + quoted(text));
  if (v < min || v > max)
    return Status::parse_error(quoted(text) + " is outside [" +
                               std::to_string(min) + ", " +
                               std::to_string(max) + "]");
  return v;
}

Result<std::uint64_t> parse_byte_size(std::string_view text) {
  if (text.empty())
    return Status::parse_error("expected a byte size, got empty string");
  std::uint64_t scale = 1;
  std::string_view digits = text;
  switch (text.back()) {
    case 'k': case 'K': scale = 1ull << 10; break;
    case 'm': case 'M': scale = 1ull << 20; break;
    case 'g': case 'G': scale = 1ull << 30; break;
    case 't': case 'T': scale = 1ull << 40; break;
    default: break;
  }
  if (scale != 1) digits.remove_suffix(1);
  const Result<std::uint64_t> r = parse_u64(digits, 1, UINT64_MAX / scale);
  if (!r.ok())
    return Status::parse_error("bad byte size " + quoted(text) +
                               " (want e.g. 1048576, 64K, 512M, 2G): " +
                               r.status().message());
  return *r * scale;
}

}  // namespace gfa
