#include "util/parse_number.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace gfa {

namespace {

std::string quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

Result<std::uint64_t> parse_u64(std::string_view text, std::uint64_t min,
                                std::uint64_t max) {
  if (text.empty())
    return Status::parse_error("expected a number, got empty string");
  for (char c : text) {
    if (c < '0' || c > '9')
      return Status::parse_error("expected an unsigned integer, got " +
                                 quoted(text));
  }
  // All-digit input: only overflow can fail now.
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0')
    return Status::parse_error("number out of range: " + quoted(text));
  if (v < min || v > max)
    return Status::parse_error(quoted(text) + " is outside [" +
                               std::to_string(min) + ", " +
                               std::to_string(max) + "]");
  return static_cast<std::uint64_t>(v);
}

Result<unsigned> parse_unsigned(std::string_view text, unsigned min,
                                unsigned max) {
  Result<std::uint64_t> r = parse_u64(text, min, max);
  if (!r.ok()) return r.status();
  return static_cast<unsigned>(*r);
}

Result<double> parse_double(std::string_view text, double min, double max) {
  if (text.empty())
    return Status::parse_error("expected a number, got empty string");
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v))
    return Status::parse_error("expected a finite number, got " + quoted(text));
  if (v < min || v > max)
    return Status::parse_error(quoted(text) + " is outside [" +
                               std::to_string(min) + ", " +
                               std::to_string(max) + "]");
  return v;
}

namespace {

std::uint64_t byte_scale_of(char c) {
  switch (c) {
    case 'k': case 'K': return 1ull << 10;
    case 'm': case 'M': return 1ull << 20;
    case 'g': case 'G': return 1ull << 30;
    case 't': case 'T': return 1ull << 40;
    default: return 0;
  }
}

}  // namespace

Result<std::uint64_t> parse_byte_size(std::string_view text) {
  if (text.empty())
    return Status::parse_error("expected a byte size, got empty string");
  // Split into the leading digit run and whatever follows, so trailing junk
  // after a valid suffix ("2Gb", "64KB") is called out explicitly instead of
  // surfacing as a confusing "not an integer" error.
  std::size_t digits_end = 0;
  while (digits_end < text.size() && text[digits_end] >= '0' &&
         text[digits_end] <= '9')
    ++digits_end;
  const std::string_view digits = text.substr(0, digits_end);
  const std::string_view rest = text.substr(digits_end);
  std::uint64_t scale = 1;
  if (!rest.empty()) {
    scale = byte_scale_of(rest.front());
    if (scale == 0)
      return Status::parse_error("bad byte size " + quoted(text) +
                                 " (want e.g. 1048576, 64K, 512M, 2G)");
    if (rest.size() > 1)
      return Status::invalid_argument(
          "bad byte size " + quoted(text) + ": trailing " +
          quoted(rest.substr(1)) + " after the " + quoted(rest.substr(0, 1)) +
          " suffix (want e.g. 1048576, 64K, 512M, 2G)");
  }
  const Result<std::uint64_t> r = parse_u64(digits, 1, UINT64_MAX / scale);
  if (!r.ok())
    return Status::parse_error("bad byte size " + quoted(text) +
                               " (want e.g. 1048576, 64K, 512M, 2G): " +
                               r.status().message());
  return *r * scale;
}

Result<double> parse_duration_seconds(std::string_view text) {
  if (text.empty())
    return Status::parse_error("expected a duration, got empty string");
  // Number prefix: digits with an optional fractional part (no sign, no
  // exponent — this is a CLI duration, not scientific notation).
  std::size_t num_end = 0;
  bool saw_digit = false, saw_dot = false;
  while (num_end < text.size()) {
    const char c = text[num_end];
    if (c >= '0' && c <= '9') {
      saw_digit = true;
    } else if (c == '.' && !saw_dot) {
      saw_dot = true;
    } else {
      break;
    }
    ++num_end;
  }
  if (!saw_digit)
    return Status::parse_error("expected a duration like 1.5, 500ms, 2m, got " +
                               quoted(text));
  const std::string_view rest = text.substr(num_end);
  double scale = 1.0;
  std::string_view suffix;
  if (!rest.empty()) {
    // Longest match first: "ms" before "m".
    if (rest.substr(0, 2) == "ms") {
      scale = 1e-3;
      suffix = rest.substr(0, 2);
    } else if (rest.front() == 's') {
      suffix = rest.substr(0, 1);
    } else if (rest.front() == 'm') {
      scale = 60.0;
      suffix = rest.substr(0, 1);
    } else if (rest.front() == 'h') {
      scale = 3600.0;
      suffix = rest.substr(0, 1);
    } else {
      return Status::parse_error("bad duration " + quoted(text) +
                                 " (want e.g. 1.5, 500ms, 30s, 2m, 1h)");
    }
    if (rest.size() > suffix.size())
      return Status::invalid_argument(
          "bad duration " + quoted(text) + ": trailing " +
          quoted(rest.substr(suffix.size())) + " after the " + quoted(suffix) +
          " suffix (want e.g. 1.5, 500ms, 30s, 2m, 1h)");
  }
  const Result<double> v = parse_double(text.substr(0, num_end), 0.0, 1e12);
  if (!v.ok()) return v.status();
  return *v * scale;
}

}  // namespace gfa
