#pragma once
// Minimal shared thread pool for the embarrassingly parallel loops of the
// abstraction pipeline (the O(k³) basis-change transforms of the word lift,
// per-output-word extraction, concurrent spec/impl abstraction).
//
// Semantics:
//   * parallel_for(n, fn) runs fn(i) for every i in [0, n), blocking until
//     all calls have finished. Work is claimed in chunks from a global pool
//     and the calling thread participates, so progress never depends on a
//     worker being free.
//   * Nested calls (from inside a pool task) and calls while the pool is
//     busy degrade to serial execution on the calling thread — correct by
//     construction, never deadlocking.
//   * The first exception thrown by fn is captured and rethrown on the
//     calling thread once the loop has drained.
//   * An optional ExecControl is polled between chunks (and between serial
//     iterations); expiry throws StatusError(kDeadlineExceeded/kCancelled)
//     on the calling thread, so time-bounded engines stop promptly even
//     inside pooled loops.
//
// The pool is sized to GFA_THREADS when that environment variable is set. A
// malformed value (non-numeric, zero, > 1024, trailing garbage) is rejected
// with a diagnostic and exit(2) rather than silently falling back — the same
// policy as GFA_BENCH_MAX_K. Unset means std::thread::hardware_concurrency().
// set_parallel_thread_count() overrides both at runtime (gfa_tool --threads,
// the bench scaling sections, the determinism tests).

#include <cstddef>
#include <functional>

#include "util/exec_control.h"

namespace gfa {

/// Number of threads participating in parallel loops (>= 1, counting the
/// caller).
unsigned parallel_thread_count();

/// Overrides the pool size (clamped to [1, 1024]); beats GFA_THREADS. A live
/// pool is resized in place: the call blocks until no pooled loop is in
/// flight, joins the old workers, and respawns. Must not be called from
/// inside a parallel loop body (it would deadlock on the loop it is part of).
void set_parallel_thread_count(unsigned n);

/// Number of threads a parallel_for launched *right now* would use: the pool
/// width at top level, 1 when already inside pool work (nested loops degrade
/// to serial). Sizing hint for shard counts; not a reservation.
unsigned parallel_available_width();

/// Runs fn(i) for i in [0, n); see the header comment for guarantees.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  const ExecControl* control = nullptr);

/// Runs a and b, potentially concurrently; rethrows the first exception.
void parallel_invoke(const std::function<void()>& a,
                     const std::function<void()>& b,
                     const ExecControl* control = nullptr);

}  // namespace gfa
