#pragma once
// Byte-denominated memory budgets for verification runs.
//
// The paper's methodology (Tables 1–2) treats mem-outs as first-class
// outcomes; a ResourceBudget makes them *bounded* outcomes. Each allocation
// hot spot — mpoly working terms, the Buchberger pair queue, BDD unique/ITE
// tables, the SAT clause arena, the backward rewriter's substitution maps —
// charges an estimated byte cost against the budget as it grows and releases
// it as it shrinks. Exceeding the total (or an optional per-site) limit
// unwinds via StatusError(kResourceExhausted), which the engine layer
// converts into a clean Status and records alongside the peak usage in the
// run report.
//
// Charges are estimates (container overhead is approximated with the
// per-entry constants below), so the budget bounds the dominant data
// structures rather than the process RSS — good enough to stop a blow-up
// long before the allocator does, and cheap enough (relaxed atomics) to sit
// inside reduction loops.
//
// A budget is threaded through ExecControl (`control->budget`, nullptr =
// unbounded) next to the deadline and cancel token it behaves like.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace gfa {

/// One enumerator per counted allocation hot spot. Keep budget_site_name(),
/// the "budget:*" fault-injection sites, and the DESIGN.md table in sync.
enum class BudgetSite : unsigned {
  kMpolyTerms = 0,   // normal_form working-term map (poly/mpoly.cpp)
  kPairQueue,        // Buchberger critical-pair queue (poly/groebner.cpp)
  kBddNodes,         // BDD node/unique/ITE-cache tables (baselines/bdd)
  kSatClauses,       // CDCL clause arena + learned clauses (baselines/sat)
  kRewriterTerms,    // backward-rewriter term + occurrence maps (abstraction)
};
inline constexpr std::size_t kNumBudgetSites = 5;

/// Canonical site name, e.g. "mpoly.terms"; matches the fault-injection
/// site "budget:<name>" fired by the Nth charge at that site.
const char* budget_site_name(BudgetSite site);

// Per-entry byte estimates used by the charge sites (node payload plus
// amortized container/index overhead). Centralised so tests and docs can
// reason about how many entries a given --memory-budget admits.
inline constexpr std::size_t kMPolyTermBytes = 128;       // map node + monomial
inline constexpr std::size_t kPairEntryBytes = 32;        // deque slot
inline constexpr std::size_t kBddNodeBytes = 64;          // node + unique entry
inline constexpr std::size_t kBddCacheEntryBytes = 48;    // ITE memo entry
inline constexpr std::size_t kSatClauseOverheadBytes = 48; // Clause + watchers
inline constexpr std::size_t kSatLiteralBytes = 8;        // lit + watch slots
inline constexpr std::size_t kRewriterTermBytes = 96;     // term map node + coeff

/// Thread-safe byte accounting with a hard total limit and optional
/// per-site limits. charge() throws StatusError(kResourceExhausted) naming
/// the site that tripped; release() never throws. Peaks are retained after
/// release for reporting.
class ResourceBudget {
 public:
  /// limit_bytes == 0 means "account but never trip" (useful for peak
  /// measurement and for fault-injection sweeps that need charges to flow).
  explicit ResourceBudget(std::size_t limit_bytes = 0) : limit_(limit_bytes) {}

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Optional per-site cap on top of the total limit (0 = none).
  void set_site_limit(BudgetSite site, std::size_t bytes) {
    sites_[index(site)].limit = bytes;
  }

  /// Adds `bytes` at `site`; throws StatusError(kResourceExhausted) — after
  /// rolling the addition back — if the total or site limit would be
  /// exceeded. Fires the "budget:<site>" fault-injection point.
  void charge(BudgetSite site, std::size_t bytes);

  /// Returns previously charged bytes. Never throws; clamps at zero to stay
  /// sane if an estimate shrank between charge and release.
  void release(BudgetSite site, std::size_t bytes) noexcept;

  /// Raises the recorded peak to at least `bytes` without charging anything.
  /// Used by a parent budget folding in the peaks of child budgets it sliced
  /// itself into (hierarchical extraction), so reports over the parent still
  /// see the run's true high-water mark.
  void fold_peak(std::size_t bytes) noexcept {
    std::size_t cur = peak_.load(std::memory_order_relaxed);
    while (cur < bytes && !peak_.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }

  std::size_t limit_bytes() const { return limit_; }
  std::size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t charge_calls() const {
    return charges_.load(std::memory_order_relaxed);
  }
  std::size_t site_used_bytes(BudgetSite site) const {
    return sites_[index(site)].used.load(std::memory_order_relaxed);
  }
  std::size_t site_peak_bytes(BudgetSite site) const {
    return sites_[index(site)].peak.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t index(BudgetSite site) {
    return static_cast<std::size_t>(site);
  }

  struct SiteState {
    std::atomic<std::size_t> used{0};
    std::atomic<std::size_t> peak{0};
    std::size_t limit = 0;  // set before the run starts, read-only after
  };

  std::size_t limit_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> charges_{0};
  SiteState sites_[kNumBudgetSites];
};

// The budget rides inside ExecControl (exec_control.h), reachable at charge
// sites via budget_of(control).

/// RAII accounting for one owner's share of one site. Null-budget tolerant
/// (every call is a no-op), releases whatever is still held on destruction,
/// and keeps its own held-byte count so owners can track a container whose
/// size moves both ways. charge failures propagate (StatusError) with the
/// lease's count unchanged, so unwinding releases exactly what was charged.
class BudgetLease {
 public:
  BudgetLease(ResourceBudget* budget, BudgetSite site)
      : budget_(budget), site_(site) {}
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;
  ~BudgetLease() {
    if (budget_ != nullptr && held_ > 0) budget_->release(site_, held_);
  }

  bool active() const { return budget_ != nullptr; }
  std::size_t held_bytes() const { return held_; }

  /// Adjusts the lease to `bytes` total, charging the delta up (may throw)
  /// or releasing the delta down.
  void set_bytes(std::size_t bytes) {
    if (budget_ == nullptr || bytes == held_) return;
    if (bytes > held_) {
      budget_->charge(site_, bytes - held_);
    } else {
      budget_->release(site_, held_ - bytes);
    }
    held_ = bytes;
  }

  void add(std::size_t bytes) {
    if (budget_ == nullptr || bytes == 0) return;
    budget_->charge(site_, bytes);
    held_ += bytes;
  }

  void sub(std::size_t bytes) noexcept {
    if (budget_ == nullptr || bytes == 0) return;
    if (bytes > held_) bytes = held_;
    budget_->release(site_, bytes);
    held_ -= bytes;
  }

 private:
  ResourceBudget* budget_;
  BudgetSite site_;
  std::size_t held_ = 0;
};

}  // namespace gfa
