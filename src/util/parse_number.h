#pragma once
// Validated numeric parsing for CLI arguments and environment variables.
//
// std::atoi returns 0 on garbage and ignores trailing junk, which turned
// `gfa_tool extract foo.net abc` into a silent F_2^0 run. These helpers
// reject empty input, non-numeric text, trailing garbage, out-of-range
// values, and (for parse_unsigned) values outside [min, max], reporting each
// failure as a kParseError Status naming the offending text.

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace gfa {

/// Parses a base-10 unsigned integer in [min, max]. No sign, no whitespace,
/// no trailing characters.
Result<std::uint64_t> parse_u64(std::string_view text,
                                std::uint64_t min = 0,
                                std::uint64_t max = UINT64_MAX);

/// parse_u64 narrowed to unsigned.
Result<unsigned> parse_unsigned(std::string_view text, unsigned min = 0,
                                unsigned max = UINT32_MAX);

/// Parses a finite decimal double in [min, max] (e.g. "--timeout=0.001").
Result<double> parse_double(std::string_view text, double min, double max);

/// Parses a byte count with an optional binary-scale suffix: "1048576",
/// "64K", "512M", "2G", "1T" (case-insensitive, powers of 1024). Rejects
/// zero, overflow, and — as kInvalidArgument naming the junk — any trailing
/// characters after a valid suffix ("2Gb", "64KB"); for "--memory-budget=2G".
Result<std::uint64_t> parse_byte_size(std::string_view text);

/// Parses a duration into seconds: a bare decimal number means seconds
/// ("1.5"), or a number with a unit suffix "ms", "s", "m", "h" ("500ms",
/// "2m"). Trailing characters after a valid suffix ("500msx", "1sx") are
/// kInvalidArgument naming the junk; negative and non-finite values are
/// rejected. For "--retry-backoff=250ms".
Result<double> parse_duration_seconds(std::string_view text);

}  // namespace gfa
