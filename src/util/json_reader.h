#pragma once
// Minimal JSON parser: the read-side counterpart of util/json_writer.h.
//
// The worker-isolation layer (src/worker/) speaks length-prefixed JSON frames
// over a pipe; the supervisor needs to parse the child's response (and the
// child the parent's request) without any third-party dependency. This is a
// strict recursive-descent parser over the JSON the JsonWriter emits —
// objects, arrays, strings with escapes, finite numbers, booleans, null —
// with a nesting-depth cap so hostile input cannot blow the stack.
//
// Numbers are held as double (53-bit integer precision — plenty for byte
// budgets, wall times, and stats). Object members keep their source order.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gfa {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Tolerant typed getters for protocol decoding: the fallback is returned
  // when the member is absent or has the wrong type.
  double number_or(std::string_view key, double fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_object();
  static JsonValue make_array();

  // Mutable builders, used by the parser.
  std::vector<JsonValue>& mutable_items() { return items_; }
  std::vector<std::pair<std::string, JsonValue>>& mutable_members() {
    return members_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

/// Parses exactly one JSON document (leading/trailing whitespace allowed;
/// anything after the value is kParseError). Depth is capped at 64.
Result<JsonValue> parse_json(std::string_view text);

}  // namespace gfa
