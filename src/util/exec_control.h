#pragma once
// Deadlines and cooperative cancellation for long-running verification jobs.
//
// A Deadline is a monotonic-clock cutoff (default: never); a CancelToken is a
// shared flag any thread may fire. An ExecControl bundles the two and is
// threaded — by pointer, nullptr meaning "unbounded" — through RunOptions
// into every computation loop deep enough to hang at large k: the extractor's
// substitution chain, normal_form division, Buchberger's pair loop, the SAT
// conflict loop, BDD node allocation, and parallel_for chunk dispatch.
//
// Loops poll throw_if_stopped(control) at checkpoints; expiry unwinds via
// StatusError (caught at the API boundary and returned as kDeadlineExceeded /
// kCancelled), so a 24-hour-timeout methodology (paper Tables 1–2) can run
// in-process without killing the host.

#include <atomic>
#include <chrono>
#include <memory>

#include "util/fault_inject.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace gfa {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires.
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline infinite() { return Deadline(); }
  static Deadline at(Clock::time_point when) { return Deadline(when); }
  /// Expires `seconds` from now (clamped to >= 0).
  static Deadline after(double seconds);

  bool is_infinite() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !is_infinite() && Clock::now() >= when_; }

  /// Seconds until expiry; negative once expired, +inf when infinite.
  double remaining_seconds() const;

  Clock::time_point when() const { return when_; }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// Copyable handle on a shared cancellation flag; all copies observe the same
/// request_cancel(). Safe to fire from any thread.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct ExecControl {
  Deadline deadline;
  CancelToken cancel;
  /// Optional memory budget (not owned; must outlive the run). Charge sites
  /// reach it via budget_of(control), so a nullptr here — the default —
  /// costs nothing.
  ResourceBudget* budget = nullptr;

  /// kCancelled wins over kDeadlineExceeded (an explicit user action beats a
  /// timer); OK while neither has fired.
  Status check() const {
    if (cancel.cancelled()) return Status::cancelled();
    if (deadline.expired()) return Status::deadline_exceeded();
    return Status();
  }

  bool should_stop() const { return cancel.cancelled() || deadline.expired(); }
};

inline ResourceBudget* budget_of(const ExecControl* control) {
  return control == nullptr ? nullptr : control->budget;
}

/// Checkpoint: no-op on nullptr or while running; throws StatusError carrying
/// kCancelled / kDeadlineExceeded once the control fires. Doubles as the
/// "cancel:checkpoint" fault-injection point, so sweeps can prove every
/// polling loop unwinds cleanly from a checkpoint-timed cancellation.
inline void throw_if_stopped(const ExecControl* control) {
  if (control == nullptr) return;
  GFA_FAULT_POINT("cancel:checkpoint");
  Status s = control->check();
  if (!s.ok()) throw StatusError(std::move(s));
}

}  // namespace gfa
