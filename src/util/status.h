#pragma once
// The library-wide error model: gfa::Status and gfa::Result<T>.
//
// Every user-facing entry point (parsers, field construction, the
// verification engines, the CLI) reports recoverable failures as a Status
// instead of throwing: a code from the closed set below plus a human-readable
// message. Exceptions remain in use *inside* the library for invariant
// violations and as the transport that unwinds deep computation loops
// (deadline expiry, budget trips); they are converted to Status at the public
// boundary — see capture_result() and StatusError.

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace gfa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller error: bad k, mismatched words, unknown name
  kParseError,         // malformed netlist / Verilog / number text
  kDeadlineExceeded,   // RunOptions deadline expired mid-computation
  kCancelled,          // CancelToken fired
  kUnsupported,        // the engine cannot handle this instance shape
  kResourceExhausted,  // a memory-shaped budget tripped (terms, BDD nodes)
  kInternal,           // escape hatch: unexpected exception at the boundary
  kWorkerCrashed,      // an isolated worker process died (signal, OOM-kill,
                       // protocol corruption) without producing a verdict
  kCertificationFailed,  // a verdict failed its independent certification
                         // (simulator cross-check or witness replay): a loud
                         // internal error, never a silent wrong answer
};

/// Canonical spelling, e.g. "kDeadlineExceeded".
const char* status_code_name(StatusCode code);

/// The documented CLI exit code for each Status code (see README):
///   kOk 0, kInternal 2, usage 64 (not a Status), kParseError 65,
///   kInvalidArgument 66, kUnsupported 69, kResourceExhausted 70,
///   kWorkerCrashed 71, kCertificationFailed 73, kCancelled 74,
///   kDeadlineExceeded 75.
int exit_code_for(StatusCode code);

class Status {
 public:
  /// Default = OK.
  Status() = default;

  static Status invalid_argument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status parse_error(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status deadline_exceeded(std::string message = "deadline exceeded") {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status cancelled(std::string message = "cancelled") {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status resource_exhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status worker_crashed(std::string message) {
    return Status(StatusCode::kWorkerCrashed, std::move(message));
  }
  static Status certification_failed(std::string message) {
    return Status(StatusCode::kCertificationFailed, std::move(message));
  }
  /// For callers that re-wrap an existing non-OK code with new context (the
  /// portfolio engine's attempt summaries). `code` must not be kOk.
  static Status with_code(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk && "with_code requires an error code");
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "kParseError: line 3: unknown gate type 'nandd'" ("OK" when ok).
  std::string to_string() const;

  bool operator==(const Status& rhs) const {
    return code_ == rhs.code_ && message_ == rhs.message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Internal exception carrying a Status out of deep computation loops
/// (deadline checkpoints, cancellation). Thrown by throw_if_stopped() and
/// converted back to its Status by capture_result() at the API boundary.
struct StatusError : std::runtime_error {
  explicit StatusError(Status s)
      : std::runtime_error(s.to_string()), status(std::move(s)) {}
  Status status;
};

/// A value or a non-OK Status. Accessing value() on an error (or status() on
/// a default-constructed Result) is a programming error, checked by assert.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() on an error Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() on an error Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() on an error Result");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Inverse of status_code_name(): resolves a canonical spelling (e.g.
/// "kDeadlineExceeded") back to its code; unknown spellings are
/// kInvalidArgument. Used by the worker protocol to reconstruct a Status
/// from its wire form.
Result<StatusCode> status_code_from_name(std::string_view name);

/// Maps an in-flight exception (caught via catch (...)) to a Status:
/// StatusError -> its payload, std::bad_alloc -> kResourceExhausted,
/// std::invalid_argument -> kInvalidArgument, any other std::exception ->
/// kInternal. Callers wanting finer mapping (e.g. ParseError) catch those
/// types first.
Status status_from_current_exception();

/// Runs `fn` and wraps its return value in a Result, converting exceptions
/// via status_from_current_exception(). The standard adapter from the
/// library's internal exception style to the public Status style.
template <typename Fn>
auto capture_result(Fn&& fn) -> Result<decltype(fn())> {
  try {
    return fn();
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
