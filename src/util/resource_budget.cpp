#include "util/resource_budget.h"

#include <cstdio>
#include <string>

#include "util/fault_inject.h"

namespace gfa {

namespace {

/// Fault-injection site names for the Nth-charge injection points, indexed
/// by BudgetSite. Must stay in sync with budget_site_name() and the
/// registry in util/fault_inject.cpp.
constexpr const char* kChargeFaultSites[kNumBudgetSites] = {
    "budget:mpoly.terms", "budget:pair.queue", "budget:bdd.nodes",
    "budget:sat.clauses", "budget:rewriter.terms",
};

/// Lock-free max update; relaxed is fine, peaks are advisory reporting.
void raise_max(std::atomic<std::size_t>& slot, std::size_t value) {
  std::size_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::string format_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%zuM", bytes / (1024 * 1024));
  else if (bytes >= 10ull * 1024)
    std::snprintf(buf, sizeof(buf), "%zuK", bytes / 1024);
  else
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  return buf;
}

}  // namespace

const char* budget_site_name(BudgetSite site) {
  switch (site) {
    case BudgetSite::kMpolyTerms:
      return "mpoly.terms";
    case BudgetSite::kPairQueue:
      return "pair.queue";
    case BudgetSite::kBddNodes:
      return "bdd.nodes";
    case BudgetSite::kSatClauses:
      return "sat.clauses";
    case BudgetSite::kRewriterTerms:
      return "rewriter.terms";
  }
  return "unknown";
}

void ResourceBudget::charge(BudgetSite site, std::size_t bytes) {
  charges_.fetch_add(1, std::memory_order_relaxed);
  GFA_FAULT_POINT(kChargeFaultSites[index(site)]);
  SiteState& s = sites_[index(site)];
  const std::size_t site_now =
      s.used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const std::size_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const bool over_total = limit_ != 0 && now > limit_;
  const bool over_site = s.limit != 0 && site_now > s.limit;
  if (over_total || over_site) {
    // Roll the failed charge back so a caller that catches and continues
    // (the portfolio engine) sees consistent accounting; peaks keep the
    // attempted high-water mark as the most honest "what it wanted" figure.
    raise_max(s.peak, site_now);
    raise_max(peak_, now);
    s.used.fetch_sub(bytes, std::memory_order_relaxed);
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    const char* name = budget_site_name(site);
    if (over_total)
      throw StatusError(Status::resource_exhausted(
          "memory budget exhausted at " + std::string(name) + ": " +
          format_bytes(now) + " needed > " + format_bytes(limit_) + " limit"));
    throw StatusError(Status::resource_exhausted(
        "per-site memory budget exhausted at " + std::string(name) + ": " +
        format_bytes(site_now) + " needed > " + format_bytes(s.limit) +
        " limit"));
  }
  raise_max(s.peak, site_now);
  raise_max(peak_, now);
}

void ResourceBudget::release(BudgetSite site, std::size_t bytes) noexcept {
  SiteState& s = sites_[index(site)];
  // Clamp instead of underflowing: releases are matched to charges by the
  // BudgetLease bookkeeping, but a stale estimate must not wrap the counter.
  std::size_t cur = s.used.load(std::memory_order_relaxed);
  std::size_t take;
  do {
    take = bytes < cur ? bytes : cur;
  } while (!s.used.compare_exchange_weak(cur, cur - take,
                                         std::memory_order_relaxed));
  cur = used_.load(std::memory_order_relaxed);
  do {
    take = bytes < cur ? bytes : cur;
  } while (!used_.compare_exchange_weak(cur, cur - take,
                                        std::memory_order_relaxed));
}

}  // namespace gfa
