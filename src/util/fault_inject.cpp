#include "util/fault_inject.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "util/parse_number.h"

namespace gfa::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Action {
  kBudgetExhausted,  // throw StatusError(kResourceExhausted)
  kBadAlloc,         // throw std::bad_alloc, as a real failed allocation would
  kCancel,           // throw StatusError(kCancelled)
  kCaller,           // consumed via fault::consume(); the caller enacts the
                     // failure (worker crash/hang, checkpoint corruption)
};

struct SiteInfo {
  const char* name;
  Action action;
};

// The registry of injection points. Each "budget:*" entry fires inside
// ResourceBudget::charge for the matching BudgetSite; "oom:*" entries sit
// directly in front of the container insertions they model; the checkpoint
// entry fires inside throw_if_stopped. Keep DESIGN.md ("Robustness & fault
// tolerance") in sync with this table.
constexpr SiteInfo kSites[] = {
    {"budget:mpoly.terms", Action::kBudgetExhausted},
    {"budget:pair.queue", Action::kBudgetExhausted},
    {"budget:bdd.nodes", Action::kBudgetExhausted},
    {"budget:sat.clauses", Action::kBudgetExhausted},
    {"budget:rewriter.terms", Action::kBudgetExhausted},
    {"oom:rewriter.add", Action::kBadAlloc},
    {"oom:bdd.make", Action::kBadAlloc},
    {"oom:sat.learn", Action::kBadAlloc},
    {"cancel:checkpoint", Action::kCancel},
    {"worker:crash", Action::kCaller},
    {"worker:hang", Action::kCaller},
    {"checkpoint:corrupt", Action::kCaller},
    // Verification service (src/service/): the cache writer flips a stored
    // byte so the CRC guard must catch it on the next get; the accept loop
    // treats one accepted connection as failed to prove the daemon survives.
    {"cache:corrupt", Action::kCaller},
    {"service:accept", Action::kCaller},
    // Verdict certification (src/certify/): forces the post-equivalence
    // simulation cross-check to disagree, so the kCertificationFailed path
    // (exit 73 + flight-recorder dump) is testable deterministically.
    {"certify:mismatch", Action::kCaller},
};
constexpr std::size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

struct State {
  const SiteInfo* site = nullptr;        // valid while armed
  std::atomic<std::int64_t> countdown{0};  // fires when it reaches 0
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> fired{false};
};

State& state() {
  static State s;
  return s;
}

const SiteInfo* find_site(std::string_view name) {
  for (const SiteInfo& s : kSites)
    if (name == s.name) return &s;
  return nullptr;
}

[[noreturn]] void fire(const SiteInfo& site) {
  state().fired.store(true, std::memory_order_relaxed);
  // One-shot: drop the enabled() gate so later GFA_FAULT_POINTs are back to
  // a single relaxed load and pass through. fired()/hits() survive re-read.
  detail::g_armed.store(false, std::memory_order_relaxed);
  switch (site.action) {
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kCancel:
      throw StatusError(Status::cancelled(std::string("fault injection: ") +
                                          site.name + " fired"));
    case Action::kCaller:
      // Caller-enacted sites are queried via consume(), never via point().
      throw StatusError(Status::internal(
          std::string("fault site ") + site.name +
          " is caller-enacted; production code must use fault::consume()"));
    case Action::kBudgetExhausted:
    default:
      throw StatusError(Status::resource_exhausted(
          std::string("fault injection: ") + site.name + " fired"));
  }
}

#if defined(GFA_FAULT_INJECTION)
/// Honors GFA_INJECT=site:n before main(). Only our own function-local state
/// is touched, so static-initialization order is not a concern.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("GFA_INJECT");
    if (spec == nullptr || *spec == '\0') return;
    const Status s = arm_spec(spec);
    if (!s.ok()) {
      std::fprintf(stderr, "GFA_INJECT: %s\n", s.to_string().c_str());
      std::exit(2);
    }
  }
} g_env_init;
#else
/// When compiled out, a requested injection must fail loudly rather than
/// silently run the un-faulted path a test believes is faulted.
struct EnvInit {
  EnvInit() {
    if (std::getenv("GFA_INJECT") != nullptr) {
      std::fprintf(stderr,
                   "GFA_INJECT set but fault injection is compiled out "
                   "(rebuild with -DGFA_FAULT_INJECTION=ON)\n");
      std::exit(2);
    }
  }
} g_env_init;
#endif

}  // namespace

bool compiled_in() {
#if defined(GFA_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

void point(const char* site) {
  State& s = state();
  if (!detail::g_armed.load(std::memory_order_relaxed)) return;
  const SiteInfo* armed_site = s.site;
  if (armed_site == nullptr || std::strcmp(site, armed_site->name) != 0) return;
  s.hits.fetch_add(1, std::memory_order_relaxed);
  // fetch_sub returning 1 means this hit is the Nth: exactly one thread
  // fires, later hits see a negative countdown and pass.
  if (s.countdown.fetch_sub(1, std::memory_order_relaxed) == 1) fire(*armed_site);
}

bool consume(const char* site) {
  State& s = state();
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  const SiteInfo* armed_site = s.site;
  if (armed_site == nullptr || std::strcmp(site, armed_site->name) != 0)
    return false;
  s.hits.fetch_add(1, std::memory_order_relaxed);
  if (s.countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Same one-shot semantics as fire(), minus the throw.
    s.fired.store(true, std::memory_order_relaxed);
    detail::g_armed.store(false, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status arm(std::string_view site, std::uint64_t n) {
  if (!compiled_in())
    return Status::unsupported(
        "fault injection not compiled in (build with -DGFA_FAULT_INJECTION=ON)");
  if (n == 0)
    return Status::invalid_argument("fault-injection count must be >= 1");
  const SiteInfo* info = find_site(site);
  if (info == nullptr) {
    std::string known;
    for (const SiteInfo& s : kSites) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    return Status::invalid_argument("unknown fault-injection site '" +
                                    std::string(site) + "' (known: " + known +
                                    ")");
  }
  State& s = state();
  detail::g_armed.store(false, std::memory_order_relaxed);
  s.site = info;
  s.countdown.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
  s.fired.store(false, std::memory_order_relaxed);
  detail::g_armed.store(true, std::memory_order_release);
  return Status();
}

Status arm_spec(std::string_view spec) {
  std::string_view site = spec;
  std::uint64_t n = 1;
  if (const auto colon = spec.rfind(':'); colon != std::string_view::npos &&
                                          spec.find(':') != colon) {
    // Site names contain one ':' ("oom:bdd.make"); a second separates the
    // count ("oom:bdd.make:3").
    site = spec.substr(0, colon);
    const Result<std::uint64_t> parsed =
        parse_u64(spec.substr(colon + 1), 1, UINT64_MAX);
    if (!parsed.ok())
      return Status::invalid_argument("bad fault-injection count in '" +
                                      std::string(spec) + "': " +
                                      parsed.status().message());
    n = *parsed;
  }
  return arm(site, n);
}

void disarm() {
  State& s = state();
  detail::g_armed.store(false, std::memory_order_relaxed);
  s.site = nullptr;
  s.fired.store(false, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
}

bool fired() { return state().fired.load(std::memory_order_relaxed); }

std::uint64_t hits() { return state().hits.load(std::memory_order_relaxed); }

const std::vector<std::string_view>& registered_sites() {
  static const std::vector<std::string_view> sites = [] {
    std::vector<std::string_view> out;
    out.reserve(kNumSites);
    for (const SiteInfo& s : kSites) out.emplace_back(s.name);
    return out;
  }();
  return sites;
}

}  // namespace gfa::fault
