#include "util/status.h"

#include <new>

namespace gfa {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kParseError: return "kParseError";
    case StatusCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case StatusCode::kCancelled: return "kCancelled";
    case StatusCode::kUnsupported: return "kUnsupported";
    case StatusCode::kResourceExhausted: return "kResourceExhausted";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kWorkerCrashed: return "kWorkerCrashed";
    case StatusCode::kCertificationFailed: return "kCertificationFailed";
  }
  return "k?";
}

Result<StatusCode> status_code_from_name(std::string_view name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnsupported, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kWorkerCrashed,
        StatusCode::kCertificationFailed}) {
    if (name == status_code_name(code)) return code;
  }
  return Status::invalid_argument("unknown status code '" + std::string(name) +
                                  "'");
}

int exit_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInternal: return 2;
    case StatusCode::kParseError: return 65;
    case StatusCode::kInvalidArgument: return 66;
    case StatusCode::kUnsupported: return 69;
    case StatusCode::kResourceExhausted: return 70;
    case StatusCode::kWorkerCrashed: return 71;
    case StatusCode::kCertificationFailed: return 73;
    case StatusCode::kCancelled: return 74;
    case StatusCode::kDeadlineExceeded: return 75;
  }
  return 2;
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status status_from_current_exception() {
  try {
    throw;
  } catch (const StatusError& e) {
    return e.status;
  } catch (const std::bad_alloc&) {
    return Status::resource_exhausted("out of memory");
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  } catch (...) {
    return Status::internal("unknown exception");
  }
}

}  // namespace gfa
