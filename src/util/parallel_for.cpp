#include "util/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/parse_number.h"

namespace gfa {

namespace {

/// Set while the current thread is executing pool work (or a loop body on the
/// caller's side); nested parallel_for calls then run serially.
thread_local bool tls_in_parallel = false;

/// set_parallel_thread_count() target. Non-zero beats GFA_THREADS so a
/// --threads flag parsed before the pool's first use takes effect without
/// spawning (and immediately joining) a throwaway set of workers.
std::atomic<unsigned> g_thread_override{0};
/// True once the pool singleton exists; lets set_parallel_thread_count()
/// avoid constructing it eagerly (a tool that forks isolated workers should
/// not carry a pre-fork thread pool into its children).
std::atomic<bool> g_pool_live{false};

unsigned decide_thread_count() {
  if (const unsigned n = g_thread_override.load(std::memory_order_relaxed)) {
    GFA_LOG_DEBUG("parallel_for",
                  "thread pool size " << n << " (set_parallel_thread_count)");
    return n;
  }
  if (const char* env = std::getenv("GFA_THREADS")) {
    const Result<unsigned> v = parse_unsigned(env, 1, 1024);
    if (!v.ok()) {
      GFA_LOG_ERROR("parallel_for",
                    "GFA_THREADS must be an integer in [1, 1024], got '"
                        << env << "' (" << v.status().to_string() << ")");
      std::exit(2);
    }
    GFA_LOG_DEBUG("parallel_for", "thread pool size " << *v
                                      << " (from GFA_THREADS)");
    return *v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned n = hw >= 1 ? hw : 1;
  GFA_LOG_DEBUG("parallel_for",
                "thread pool size " << n << " (hardware default)");
  return n;
}

/// One loop in flight at a time; workers claim chunks off an atomic cursor.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  const ExecControl* control = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<unsigned> active{0};  // workers currently inside the loop body
  // Failure propagation is first-error-BY-INDEX, not by wall-clock, so a
  // run that fails is reproducible across thread schedules (fault-injection
  // sweeps depend on this). Chunks are claimed off the monotonic cursor, so
  // every chunk below any claimed chunk was also claimed and runs to
  // completion or to its own error even after the drain fires; the chunk
  // holding the globally minimal failing index therefore always executes,
  // and keeping the minimum makes the rethrown error schedule-independent.
  std::exception_ptr error;          // failure at the lowest index so far
  std::size_t error_index = 0;       // both guarded by error_mutex
  std::size_t error_count = 0;
  std::mutex error_mutex;

  void work(bool is_worker) {
    std::size_t chunks_done = 0;
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      ++chunks_done;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      std::size_t i = begin;
      try {
        throw_if_stopped(control);  // deadline/cancel checkpoint per chunk
        for (; i < end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        ++error_count;
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
        next.store(n, std::memory_order_relaxed);  // drain remaining chunks
      }
    }
    // Worker-vs-caller chunk counts give a crude pool-utilization signal.
    if (chunks_done > 0) {
      if (is_worker)
        GFA_COUNT("parallel.worker_chunks", chunks_done);
      else
        GFA_COUNT("parallel.caller_chunks", chunks_done);
    }
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  unsigned thread_count() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Joins the current workers and respawns `n - 1` of them. Serialized
  /// against pooled loops via run_mutex, so no worker is mid-chunk when the
  /// join happens.
  void resize(unsigned n) {
    std::lock_guard<std::mutex> run_lock(run_mutex);
    if (n == thread_count()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = false;
      size_.store(n, std::memory_order_relaxed);
    }
    for (unsigned i = 0; i + 1 < n; ++i)
      threads_.emplace_back([this] { worker(); });
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           const ExecControl* control) {
    Job job;
    job.fn = &fn;
    job.control = control;
    job.n = n;
    job.chunk = n / (thread_count() * 8) + 1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    job.work(/*is_worker=*/false);  // the caller participates
    {
      // Wait for workers still inside a claimed chunk.
      std::unique_lock<std::mutex> lock(mutex_);
      job_ = nullptr;
      done_cv_.wait(lock, [&] { return job.active.load() == 0; });
    }
    if (job.error) {
      if (job.error_count > 1)
        GFA_COUNT("parallel.suppressed_errors", job.error_count - 1);
      std::rethrow_exception(job.error);
    }
  }

  /// Serializes top-level loops; a second concurrent caller runs serially.
  std::mutex run_mutex;

 private:
  Pool() {
    const unsigned n = decide_thread_count();
    size_.store(n, std::memory_order_relaxed);
    for (unsigned i = 0; i + 1 < n; ++i)
      threads_.emplace_back([this] { worker(); });
    g_pool_live.store(true, std::memory_order_release);
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void worker() {
    tls_in_parallel = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
        if (stop_) return;
        seen = generation_;
        job = job_;
        job->active.fetch_add(1);
      }
      job->work(/*is_worker=*/true);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->active.fetch_sub(1);
      }
      done_cv_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::atomic<unsigned> size_{1};  // threads_.size() + 1; lock-free readers
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

unsigned parallel_thread_count() { return Pool::instance().thread_count(); }

void set_parallel_thread_count(unsigned n) {
  if (n < 1) n = 1;
  if (n > 1024) n = 1024;
  g_thread_override.store(n, std::memory_order_relaxed);
  // Only resize a pool that already exists; otherwise the override is picked
  // up at first use (keeps pre-fork tools thread-free until they need loops).
  if (g_pool_live.load(std::memory_order_acquire)) Pool::instance().resize(n);
}

unsigned parallel_available_width() {
  if (tls_in_parallel) return 1;
  return Pool::instance().thread_count();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  const ExecControl* control) {
  if (n == 0) return;
  Pool& pool = Pool::instance();
  const bool serial = n == 1 || tls_in_parallel || pool.thread_count() == 1 ||
                      !pool.run_mutex.try_lock();
  GFA_COUNT("parallel.items", n);
  if (serial) {
    GFA_COUNT("parallel.serial_loops", 1);
    const bool was = tls_in_parallel;
    tls_in_parallel = true;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        throw_if_stopped(control);
        fn(i);
      }
    } catch (...) {
      tls_in_parallel = was;
      throw;
    }
    tls_in_parallel = was;
    return;
  }
  GFA_COUNT("parallel.loops", 1);
  std::lock_guard<std::mutex> lock(pool.run_mutex, std::adopt_lock);
  const bool was = tls_in_parallel;
  tls_in_parallel = true;
  try {
    pool.run(n, fn, control);
  } catch (...) {
    tls_in_parallel = was;
    throw;
  }
  tls_in_parallel = was;
}

void parallel_invoke(const std::function<void()>& a,
                     const std::function<void()>& b,
                     const ExecControl* control) {
  parallel_for(2, [&](std::size_t i) { i == 0 ? a() : b(); }, control);
}

}  // namespace gfa
