#include "util/exec_control.h"

#include <limits>

namespace gfa {

Deadline Deadline::after(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto delta = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  return Deadline(Clock::now() + delta);
}

double Deadline::remaining_seconds() const {
  if (is_infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

}  // namespace gfa
