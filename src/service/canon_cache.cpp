#include "service/canon_cache.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "abstraction/canon_serial.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "worker/checkpoint.h"

namespace gfa::service {

namespace {

constexpr char kMagic[8] = {'G', 'F', 'A', '_', 'C', 'A', 'N', 'F'};
constexpr const char* kSuffix = ".cf";

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const std::string& buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::string& buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
         << (8 * i);
  return v;
}

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4 + 8 + 4;  // ..payload len

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t cache_fingerprint(const Gf2k& field) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = fnv1a_u64(h, kCanonFormVersion);
  h = fnv1a_u64(h, kCanonEntryVersion);
  for (const std::uint64_t w : field.modulus().words()) h = fnv1a_u64(h, w);
  return h;
}

std::string key_name(const CacheKey& key) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx.%u.%016llx",
                static_cast<unsigned long long>(key.circuit_hash), key.k,
                static_cast<unsigned long long>(key.fingerprint));
  return buf;
}

std::string frame_entry(const CacheKey& key, const std::string& payload) {
  std::string buf;
  buf.reserve(kHeaderBytes + payload.size() + 4);
  buf.append(kMagic, sizeof(kMagic));
  put_u32(buf, kCanonEntryVersion);
  put_u64(buf, key.circuit_hash);
  put_u32(buf, key.k);
  put_u64(buf, key.fingerprint);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf += payload;
  put_u32(buf, worker::crc32(buf.data(), buf.size()));
  return buf;
}

Result<std::string> unframe_entry(const CacheKey& key,
                                  const std::string& bytes) {
  if (bytes.size() < kHeaderBytes + 4)
    return Status::invalid_argument("cache entry truncated");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::invalid_argument("cache entry has bad magic");
  const std::uint32_t stored_crc = get_u32(bytes, bytes.size() - 4);
  const std::uint32_t actual_crc =
      worker::crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc)
    return Status::invalid_argument("cache entry failed its CRC check");
  if (get_u32(bytes, 8) != kCanonEntryVersion)
    return Status::invalid_argument("cache entry has version " +
                                    std::to_string(get_u32(bytes, 8)));
  const CacheKey stored{get_u64(bytes, 12),
                        static_cast<unsigned>(get_u32(bytes, 20)),
                        get_u64(bytes, 24)};
  if (!(stored == key))
    return Status::invalid_argument(
        "cache entry key mismatch (misfiled entry)");
  const std::uint32_t len = get_u32(bytes, 32);
  if (kHeaderBytes + static_cast<std::size_t>(len) + 4 != bytes.size())
    return Status::invalid_argument("cache entry length mismatch");
  return bytes.substr(kHeaderBytes, len);
}

CanonCache::CanonCache(Options options) : options_(std::move(options)) {
  stats_.max_bytes = options_.max_bytes;
}

std::string CanonCache::file_of(const CacheKey& key) const {
  return options_.directory + "/" + key_name(key) + kSuffix;
}

Status CanonCache::open() {
  if (options_.directory.empty()) return Status();
  if (Status s = worker::ensure_directory(options_.directory); !s.ok())
    return s;
  DIR* dir = ::opendir(options_.directory.c_str());
  if (dir == nullptr) return Status();  // ensure_directory just passed; race
  std::lock_guard<std::mutex> lock(mu_);
  while (const struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() <= std::strlen(kSuffix) ||
        name.compare(name.size() - std::strlen(kSuffix), std::string::npos,
                     kSuffix) != 0)
      continue;
    const std::string path = options_.directory + "/" + name;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    // Entries are fully validated at get(); here only the frame shape is
    // checked so obviously-foreign files don't occupy budget. Oversized
    // warm loads stop once the bound is reached — this is a cache, not a
    // database.
    if (bytes.size() < kHeaderBytes + 4 ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      std::remove(path.c_str());
      continue;
    }
    if (bytes_ + bytes.size() > options_.max_bytes) continue;
    const std::string stem = name.substr(0, name.size() - std::strlen(kSuffix));
    bytes_ += bytes.size();
    entries_[stem] = Entry{std::move(bytes), ++use_clock_};
  }
  ::closedir(dir);
  stats_.entries = entries_.size();
  stats_.bytes = bytes_;
  if (!entries_.empty())
    GFA_LOG_INFO("service", "canonical cache warm-loaded "
                                << entries_.size() << " entries ("
                                << bytes_ << " bytes)");
  return Status();
}

std::optional<std::string> CanonCache::get(const CacheKey& key) {
  const std::string name = key_name(key);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.misses;
    GFA_COUNT("service.cache_misses", 1);
    return std::nullopt;
  }
  Result<std::string> payload = unframe_entry(key, it->second.bytes);
  if (!payload.ok()) {
    GFA_LOG_WARN("service", "dropping damaged cache entry "
                                << name << ": " << payload.status().message());
    drop_locked(name, /*count_corrupt=*/true);
    ++stats_.misses;
    GFA_COUNT("service.cache_misses", 1);
    return std::nullopt;
  }
  it->second.last_use = ++use_clock_;
  ++stats_.hits;
  GFA_COUNT("service.cache_hits", 1);
  return std::move(*payload);
}

void CanonCache::put(const CacheKey& key, const std::string& payload) {
  std::string bytes = frame_entry(key, payload);
  if (bytes.size() > options_.max_bytes) return;
  if (fault::consume("cache:corrupt") && bytes.size() > kHeaderBytes)
    // Injected damage: flip one payload byte *after* the CRC was computed,
    // so the stored entry is exactly what a bad disk or a torn write would
    // leave behind. get() must catch it.
    bytes[kHeaderBytes] = static_cast<char>(bytes[kHeaderBytes] ^ 0xFF);
  const std::string name = key_name(key);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    bytes_ -= it->second.bytes.size();
    entries_.erase(it);
  }
  bytes_ += bytes.size();
  if (!options_.directory.empty()) {
    // Atomic mirror: a crash mid-write leaves a tmp file, never a torn
    // entry. Failures are logged, not fatal — persistence is an
    // optimization, the in-memory entry still serves.
    const std::string path = file_of(key);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out) {
        GFA_LOG_WARN("service", "cannot mirror cache entry to '" << tmp << "'");
        std::remove(tmp.c_str());
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
  }
  entries_[name] = Entry{std::move(bytes), ++use_clock_};
  ++stats_.insertions;
  evict_locked();
  stats_.entries = entries_.size();
  stats_.bytes = bytes_;
}

void CanonCache::evict_locked() {
  while (bytes_ > options_.max_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    ++stats_.evictions;
    GFA_COUNT("service.cache_evictions", 1);
    drop_locked(victim->first, /*count_corrupt=*/false);
  }
}

void CanonCache::drop_locked(const std::string& name, bool count_corrupt) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes.size();
  entries_.erase(it);
  if (!options_.directory.empty())
    std::remove((options_.directory + "/" + name + kSuffix).c_str());
  if (count_corrupt) {
    ++stats_.corrupt_dropped;
    GFA_COUNT("service.cache_corrupt_dropped", 1);
  }
  stats_.entries = entries_.size();
  stats_.bytes = bytes_;
}

CacheStats CanonCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gfa::service
