#include "service/service.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "abstraction/canon_serial.h"
#include "abstraction/equivalence.h"
#include "certify/certify.h"
#include "circuit/parser.h"
#include "circuit/verilog.h"
#include "engine/registry.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "worker/checkpoint.h"
#include "worker/harness.h"
#include "worker/retry.h"

namespace gfa::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Netlist> load_circuit(const std::string& path) {
  return has_suffix(path, ".v") ? try_read_verilog_file(path)
                                : try_read_netlist_file(path);
}

/// Inherit-then-cap: a job not asking (0) gets the server default; a job
/// asking for more than the cap is clamped to it; no cap (0) passes the
/// request through. Works for both seconds and bytes.
template <typename T>
T clamp_limit(T requested, T fallback, T cap) {
  T v = requested > T{0} ? requested : fallback;
  if (cap > T{0} && (v <= T{0} || v > cap)) v = cap;
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire format

std::string encode_job_request(const JobRequest& req) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("op", req.op);
  w.member("id", req.id);
  if (req.op == "verify") {
    w.member("spec_path", req.spec_path);
    w.member("impl_path", req.impl_path);
    w.member("k", req.k);
    w.member("engine", req.engine);
    w.member("timeout_seconds", req.timeout_seconds);
    w.member("memory_budget_bytes", req.memory_budget_bytes);
    w.member("no_cache", req.no_cache);
  }
  w.end_object();
  return out.str();
}

Result<JobRequest> decode_job_request(std::string_view json) {
  Result<JsonValue> doc = parse_json(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object())
    return Status::invalid_argument("job request is not a JSON object");
  JobRequest req;
  req.op = doc->string_or("op", "verify");
  req.id = doc->u64_or("id", 0);
  req.spec_path = doc->string_or("spec_path", "");
  req.impl_path = doc->string_or("impl_path", "");
  req.k = static_cast<unsigned>(doc->u64_or("k", 0));
  req.engine = doc->string_or("engine", "abstraction");
  req.timeout_seconds = doc->number_or("timeout_seconds", 0.0);
  req.memory_budget_bytes = doc->u64_or("memory_budget_bytes", 0);
  req.no_cache = doc->bool_or("no_cache", false);
  if (req.op != "verify" && req.op != "status" && req.op != "clear-quarantine")
    return Status::invalid_argument("unknown job op '" + req.op + "'");
  return req;
}

std::string encode_job_response(const JobResponse& resp) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("op", resp.op);
  w.member("id", resp.id);
  w.member("status", status_code_name(resp.status.code()));
  if (!resp.status.ok()) w.member("message", resp.status.message());
  w.member("verdict", engine::verdict_name(resp.verdict));
  if (!resp.detail.empty()) w.member("detail", resp.detail);
  if (!resp.counterexample.empty()) {
    w.key("counterexample");
    w.begin_object();
    w.key("inputs");
    w.begin_object();
    for (const auto& [name, elem] : resp.counterexample.inputs)
      w.member(name, elem);
    w.end_object();
    w.member("output_word", resp.counterexample.output_word);
    w.member("expected", resp.counterexample.expected);
    w.member("actual", resp.counterexample.actual);
    w.member("replayed", resp.counterexample.replayed);
    w.end_object();
  }
  w.member("wall_ms", resp.wall_ms);
  if (!resp.cache.empty()) w.member("cache", resp.cache);
  if (!resp.stats.empty()) {
    w.key("stats");
    w.begin_object();
    for (const auto& [name, value] : resp.stats) w.member(name, value);
    w.end_object();
  }
  w.end_object();
  return out.str();
}

Result<JobResponse> decode_job_response(std::string_view json) {
  Result<JsonValue> doc = parse_json(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object())
    return Status::invalid_argument("job response is not a JSON object");
  JobResponse resp;
  resp.op = doc->string_or("op", "verify");
  resp.id = doc->u64_or("id", 0);
  const Result<StatusCode> code =
      status_code_from_name(doc->string_or("status", "kOk"));
  if (!code.ok()) return code.status();
  if (*code != StatusCode::kOk)
    resp.status = Status::with_code(*code, doc->string_or("message", ""));
  const Result<engine::Verdict> verdict =
      engine::verdict_from_name(doc->string_or("verdict", "unknown"));
  if (!verdict.ok()) return verdict.status();
  resp.verdict = *verdict;
  resp.detail = doc->string_or("detail", "");
  if (const JsonValue* cx = doc->find("counterexample");
      cx != nullptr && cx->is_object()) {
    if (const JsonValue* inputs = cx->find("inputs");
        inputs != nullptr && inputs->is_object()) {
      for (const auto& [name, value] : inputs->members())
        if (value.is_string())
          resp.counterexample.inputs[name] = value.as_string();
    }
    resp.counterexample.output_word = cx->string_or("output_word", "");
    resp.counterexample.expected = cx->string_or("expected", "");
    resp.counterexample.actual = cx->string_or("actual", "");
    resp.counterexample.replayed = cx->bool_or("replayed", false);
  }
  resp.wall_ms = doc->number_or("wall_ms", 0.0);
  resp.cache = doc->string_or("cache", "");
  if (const JsonValue* stats = doc->find("stats");
      stats != nullptr && stats->is_object()) {
    for (const auto& [name, value] : stats->members())
      if (value.is_number()) resp.stats[name] = value.as_number();
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Server internals

/// One client connection. The fd is owned by this struct and closed by the
/// last owner to let go — the reader thread plus every queued job hold a
/// shared_ptr, so a client that disconnects mid-batch still gets its fd kept
/// alive until its in-flight jobs have tried to answer (EPIPE is fine,
/// SIGPIPE is ignored daemon-wide).
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  /// Serializes response frames: pool threads and the reader (status
  /// replies) interleave whole frames, never bytes.
  std::mutex write_mu;
};

struct Server::Job {
  std::shared_ptr<Connection> conn;
  JobRequest req;
  Clock::time_point enqueued;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(CanonCache::Options{options_.cache_dir, options_.cache_max_bytes}) {
  if (options_.pool_size == 0) options_.pool_size = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
}

Server::~Server() {
  // Belt and braces for error paths where serve() never ran: stop threads
  // and release fds. A normal lifecycle has already done all of this.
  stop_workers_.store(true);
  stop_readers_.store(true);
  queue_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (std::thread& t : readers_)
      if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

Status Server::start() {
  if (options_.socket_path.empty())
    return Status::invalid_argument("service socket path is empty");
  struct sockaddr_un addr;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    return Status::invalid_argument(
        "socket path '" + options_.socket_path + "' exceeds " +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes");

  // Worker pool threads fork; pre-warm every lazily-constructed singleton
  // now, on the single startup thread, so no fork can inherit a mid-
  // construction lock (the same reason the portfolio engine refuses
  // portfolio_race together with isolate_attempts).
  ::signal(SIGPIPE, SIG_IGN);
  (void)obs::Metrics::instance();
  (void)engine::EngineRegistry::global();

  if (options_.cache_enabled) {
    if (Status s = cache_.open(); !s.ok()) return s;
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::internal(std::string("socket(): ") + std::strerror(errno));
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE)
      return Status::internal("bind('" + options_.socket_path +
                              "'): " + std::strerror(errno));
    // A socket file already exists: probe it. A live server answers the
    // connect (refuse to clobber it); a stale file from a crashed daemon
    // refuses the connection and is safe to replace.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    const bool live =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0;
    if (probe >= 0) ::close(probe);
    if (live)
      return Status::invalid_argument("another server is already listening on '" +
                                      options_.socket_path + "'");
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return Status::internal("bind('" + options_.socket_path +
                              "'): " + std::strerror(errno));
    GFA_LOG_WARN("service", "replaced stale socket '" << options_.socket_path
                                                      << "'");
  }
  if (::listen(listen_fd_, 64) != 0)
    return Status::internal(std::string("listen(): ") + std::strerror(errno));

  int fds[2];
  if (::pipe(fds) != 0)
    return Status::internal(std::string("pipe(): ") + std::strerror(errno));
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  // Non-blocking both ways: the drain read loop must stop at EAGAIN, and a
  // signal handler's wake write must never block on a full pipe.
  ::fcntl(wake_rd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_wr_, F_SETFL, O_NONBLOCK);

  started_ = Clock::now();
  workers_.reserve(options_.pool_size);
  for (unsigned i = 0; i < options_.pool_size; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  return Status();
}

void Server::notify_drain_from_signal() {
  // Async-signal-safe: one write, no locks, no allocation. The accept loop
  // owns the actual state change.
  const char byte = 'd';
  (void)!::write(wake_wr_, &byte, 1);
}

void Server::request_drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_.store(true);
  }
  notify_drain_from_signal();
  queue_cv_.notify_all();
}

int Server::serve() {
  while (!draining_.load()) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int n = ::poll(fds, 2, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      GFA_LOG_WARN("service", "poll(): " << std::strerror(errno));
      break;
    }
    if (fds[1].revents != 0) {
      char buf[16];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
      std::lock_guard<std::mutex> lock(queue_mu_);
      draining_.store(true);
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      ++accept_failures_;
      GFA_LOG_WARN("service", "accept(): " << std::strerror(errno));
      continue;
    }
    if (fault::consume("service:accept")) {
      // Injected accept-path failure: drop this one connection on the floor
      // and keep serving — the loop, not the connection, is the unit that
      // must survive.
      ::close(client);
      ++accept_failures_;
      GFA_LOG_WARN("service", "injected accept failure, dropped a connection");
      continue;
    }
    auto conn = std::make_shared<Connection>(client);
    std::lock_guard<std::mutex> lock(readers_mu_);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }

  // Graceful drain. Order matters: stop admitting (socket gone from the
  // filesystem, so a late connect is refused), let the pool finish every
  // queued and in-flight job — their clients are still waiting on open
  // connections — then take the threads down.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_.store(true);
  }
  queue_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
  }
  stop_workers_.store(true);
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  stop_readers_.store(true);
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (std::thread& t : readers_) t.join();
    readers_.clear();
  }
  GFA_LOG_INFO("service", "drained: " << jobs_completed_.load()
                                      << " jobs completed, "
                                      << jobs_rejected_.load() << " rejected");
  return 0;
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  while (!stop_readers_.load()) {
    struct pollfd pfd = {conn->fd, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) continue;
    // Only now that bytes are actually waiting is read_frame entered, with a
    // generous deadline of its own: read_frame consumes its buffer, so a
    // short poll-style deadline *inside* it could expire mid-frame and lose
    // the prefix. This split keeps the idle wait cheap and the framed read
    // whole.
    Result<std::string> frame =
        worker::read_frame(conn->fd, Deadline::after(30.0));
    if (!frame.ok()) return;  // EOF or a garbled stream: stop reading; any
                              // queued jobs still answer over the open fd.
    handle_request(conn, *frame);
  }
}

void Server::handle_request(const std::shared_ptr<Connection>& conn,
                            const std::string& frame) {
  Result<JobRequest> req = decode_job_request(frame);
  if (!req.ok()) {
    JobResponse resp;
    resp.status = req.status();
    respond(conn, resp);
    return;
  }

  if (req->op == "status") {
    const std::string payload = encode_status_response(req->id);
    std::lock_guard<std::mutex> lock(conn->write_mu);
    (void)worker::write_frame(conn->fd, payload);
    return;
  }

  if (req->op == "clear-quarantine") {
    // Answered inline like "status": dropping table entries never blocks on
    // the pool, so a wedged queue cannot delay an operator's reset.
    JobResponse resp;
    resp.op = "clear-quarantine";
    resp.id = req->id;
    resp.stats["cleared"] = static_cast<double>(clear_quarantine());
    respond(conn, resp);
    return;
  }

  JobResponse reject;
  reject.id = req->id;
  if (req->spec_path.empty() || req->impl_path.empty())
    reject.status = Status::invalid_argument("verify job is missing circuit paths");
  else if (req->k < 2)
    reject.status = Status::invalid_argument("verify job carries k < 2");
  else if (const auto engine =
               engine::EngineRegistry::global().require(req->engine);
           !engine.ok())
    reject.status = engine.status();
  if (!reject.status.ok()) {
    respond(conn, reject);
    return;
  }

  // Admission control, atomically with the queue: a full queue or a draining
  // server answers *now* with kResourceExhausted instead of buffering
  // without bound. draining_ flips under queue_mu_, so no job can slip in
  // behind a drain that already observed an empty queue.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_.load()) {
      reject.status = Status::with_code(StatusCode::kResourceExhausted,
                                        "server draining, not accepting new jobs");
    } else if (queue_.size() >= options_.queue_depth) {
      reject.status = Status::with_code(
          StatusCode::kResourceExhausted,
          "server overloaded: queue full (" + std::to_string(queue_.size()) +
              " jobs waiting)");
    } else {
      queue_.push_back(Job{conn, *req, Clock::now()});
      ++jobs_accepted_;
      GFA_COUNT("service.jobs_accepted", 1);
      queue_cv_.notify_one();
      return;
    }
  }
  ++jobs_rejected_;
  GFA_COUNT("service.jobs_rejected", 1);
  respond(conn, reject);
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_workers_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_workers_.load()) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    run_job(std::move(job));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::run_job(Job job) {
  JobResponse resp = run_verify(job.req);
  resp.id = job.req.id;
  resp.wall_ms = ms_since(job.enqueued);  // queue wait included
  GFA_HISTOGRAM("service.job_wall_ms",
                static_cast<std::uint64_t>(resp.wall_ms));
  ++jobs_completed_;
  GFA_COUNT("service.jobs_completed", 1);
  if (!resp.status.ok()) {
    ++jobs_failed_;
    GFA_COUNT("service.jobs_failed", 1);
  }
  respond(job.conn, resp);
}

JobResponse Server::run_verify(const JobRequest& req) {
  JobResponse resp;
  const bool cacheable = options_.cache_enabled &&
                         req.engine == "abstraction" && !req.no_cache;

  // Content-address both circuits up front, for every engine: the hashes
  // drive the canonical-form cache *and* the poison-job quarantine. The
  // parse this costs is a small fraction of any engine's run, and a parse
  // failure is the job's real outcome — the forked worker would hit the
  // same wall — so report it directly, without forking.
  const Result<Netlist> spec = load_circuit(req.spec_path);
  if (!spec.ok()) {
    resp.status = spec.status();
    return resp;
  }
  const Result<Netlist> impl = load_circuit(req.impl_path);
  if (!impl.ok()) {
    resp.status = impl.status();
    return resp;
  }
  const QuarantineKey qkey{worker::netlist_content_hash(*spec),
                           worker::netlist_content_hash(*impl), req.engine};
  if (quarantine_lookup(qkey)) {
    // Fast-fail: same status a fresh crash would produce, but without
    // burning another fork (and another crash-restart cycle) on it.
    ++quarantine_fast_fails_;
    GFA_COUNT("service.quarantined.fast_fail", 1);
    resp.status = Status::worker_crashed(
        "job is quarantined after repeated worker crashes (send "
        "clear-quarantine to retry it)");
    resp.detail = "quarantined";
    return resp;
  }

  CacheKey spec_key, impl_key;
  bool have_keys = false;
  const Gf2k* field = nullptr;
  if (cacheable) {
    field = field_for(req.k);
    if (field == nullptr) {
      resp.status = Status::invalid_argument(
          "no field F_2^" + std::to_string(req.k) + " available");
      return resp;
    }
    const std::uint64_t fp = cache_fingerprint(*field);
    spec_key = CacheKey{qkey.spec_hash, req.k, fp};
    impl_key = CacheKey{qkey.impl_hash, req.k, fp};
    have_keys = true;

    const std::optional<std::string> spec_payload = cache_.get(spec_key);
    const std::optional<std::string> impl_payload =
        spec_payload ? cache_.get(impl_key) : std::nullopt;
    if (spec_payload && impl_payload) {
      Result<WordFunction> spec_fn = decode_canon_form(*spec_payload, *field);
      Result<WordFunction> impl_fn =
          spec_fn.ok() ? decode_canon_form(*impl_payload, *field)
                       : Result<WordFunction>(spec_fn.status());
      if (spec_fn.ok() && impl_fn.ok()) {
        // Cache hit: skip extraction, run the cheap coefficient match — the
        // same comparison a cold run ends with, so the verdict is identical
        // by construction.
        std::string difference;
        const bool same = same_word_function(*spec_fn, *impl_fn, &difference);
        resp.verdict = same ? engine::Verdict::kEquivalent
                            : engine::Verdict::kNotEquivalent;
        resp.detail = difference;
        resp.cache = "hit";
        resp.stats["cache_hit"] = 1.0;
        try {
          if (same && options_.certify) {
            // A cached equivalence claim is exactly the answer a corrupted
            // or stale cache would get wrong, so cross-check it against the
            // circuits themselves before handing it out.
            const certify::CertifyOutcome check =
                certify::certify_equivalence(*spec, *impl, *field);
            resp.stats["certify_points"] = static_cast<double>(check.points);
            if (!check.status.ok()) {
              resp.status = check.status;
              resp.detail = std::string(check.status.message());
              GFA_COUNT("service.certify_failed", 1);
              GFA_LOG_ERROR("service", "cache-hit certification failed: "
                                           << resp.detail);
            }
          } else if (!same) {
            // The coefficient mismatch pinpoints a concrete witness too:
            // Schwartz–Zippel on the cached word functions, replayed through
            // the gate-level simulator.
            if (const std::optional<certify::Witness> w =
                    certify::find_word_function_witness(*spec_fn, *impl_fn,
                                                        *field))
              resp.counterexample =
                  certify::replay_witness(*spec, *impl, *field, *w);
          }
        } catch (const std::exception& e) {
          GFA_LOG_WARN("service",
                       "cache-hit certification skipped: " << e.what());
        }
        return resp;
      }
      // A decode failure is treated exactly like a CRC miss: fall through
      // and recompute (the entries will be overwritten by the fresh forms).
      GFA_LOG_WARN("service",
                   "cached canonical form failed to decode, recomputing: "
                       << (spec_fn.ok() ? impl_fn.status().message()
                                        : spec_fn.status().message()));
    }
  }

  worker::WorkerRequest wreq;
  wreq.spec_path = req.spec_path;
  wreq.impl_path = req.impl_path;
  wreq.k = req.k;
  wreq.engine = req.engine;
  wreq.timeout_seconds = clamp_limit(req.timeout_seconds,
                                     options_.default_timeout_seconds,
                                     options_.max_timeout_seconds);
  wreq.memory_budget_bytes = clamp_limit(req.memory_budget_bytes,
                                         options_.default_memory_budget_bytes,
                                         options_.max_memory_budget_bytes);
  wreq.heartbeat_interval_seconds = options_.heartbeat_interval_seconds;
  wreq.stall_timeout_seconds = options_.stall_timeout_seconds;
  wreq.export_canonical = cacheable;
  wreq.certify = options_.certify;

  worker::RetryPolicy policy;
  policy.max_attempts = options_.max_attempts;
  const engine::EngineRun run = worker::run_isolated_with_retry(wreq, policy);
  if (run.status.code() == StatusCode::kWorkerCrashed) quarantine_strike(qkey);

  resp.status = run.status;
  resp.verdict = run.verdict;
  resp.detail = run.detail;
  resp.counterexample = run.counterexample;
  resp.stats = run.stats;
  if (run.stats.find("worker_attempts") == run.stats.end() &&
      !run.attempts.empty())
    resp.stats["worker_attempts"] = static_cast<double>(run.attempts.size());
  if (cacheable) resp.cache = "miss";
  if (have_keys && run.status.ok() && !run.canonical_spec.empty() &&
      !run.canonical_impl.empty()) {
    cache_.put(spec_key, run.canonical_spec);
    cache_.put(impl_key, run.canonical_impl);
    resp.cache = "stored";
  }
  return resp;
}

void Server::respond(const std::shared_ptr<Connection>& conn,
                     const JobResponse& resp) {
  const std::string payload = encode_job_response(resp);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (Status s = worker::write_frame(conn->fd, payload); !s.ok())
    // The client hung up before its answer arrived; its loss, not ours.
    GFA_LOG_DEBUG("service", "response undeliverable: " << s.message());
}

std::string Server::encode_status_response(std::uint64_t id) const {
  const ServiceSnapshot snap = snapshot();
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("op", "status");
  w.member("id", id);
  w.member("status", status_code_name(StatusCode::kOk));
  w.key("pool");
  w.begin_object();
  w.member("size", snap.pool_size);
  w.member("busy", snap.busy);
  w.end_object();
  w.key("queue");
  w.begin_object();
  w.member("depth", static_cast<std::uint64_t>(snap.queue_depth));
  w.member("capacity", static_cast<std::uint64_t>(snap.queue_capacity));
  w.end_object();
  w.member("draining", snap.draining);
  w.member("uptime_seconds", snap.uptime_seconds);
  w.member("certify", options_.certify);
  w.key("jobs");
  w.begin_object();
  w.member("accepted", snap.jobs_accepted);
  w.member("completed", snap.jobs_completed);
  w.member("rejected", snap.jobs_rejected);
  w.member("failed", snap.jobs_failed);
  w.member("accept_failures", snap.accept_failures);
  w.end_object();
  w.key("cache");
  w.begin_object();
  w.member("enabled", options_.cache_enabled);
  w.member("hits", snap.cache.hits);
  w.member("misses", snap.cache.misses);
  w.member("insertions", snap.cache.insertions);
  w.member("evictions", snap.cache.evictions);
  w.member("corrupt_dropped", snap.cache.corrupt_dropped);
  w.member("entries", snap.cache.entries);
  w.member("bytes", snap.cache.bytes);
  w.member("max_bytes", snap.cache.max_bytes);
  w.end_object();
  w.key("quarantine");
  w.begin_object();
  w.member("strikes", static_cast<std::uint64_t>(options_.quarantine_strikes));
  w.member("ttl_seconds", options_.quarantine_ttl_seconds);
  w.member("tracked", static_cast<std::uint64_t>(snap.quarantine_tracked));
  w.member("active", static_cast<std::uint64_t>(snap.quarantine_active));
  w.member("fast_fails", snap.quarantine_fast_fails);
  w.member("trips", snap.quarantine_trips);
  w.end_object();
  if (obs::metrics_enabled()) {
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : obs::Metrics::instance().snapshot())
      w.member(name, value);
    w.end_object();
  }
  w.end_object();
  return out.str();
}

ServiceSnapshot Server::snapshot() const {
  ServiceSnapshot snap;
  snap.pool_size = options_.pool_size;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snap.busy = busy_;
    snap.queue_depth = queue_.size();
  }
  snap.queue_capacity = options_.queue_depth;
  snap.draining = draining_.load();
  snap.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - started_).count();
  snap.jobs_accepted = jobs_accepted_.load();
  snap.jobs_completed = jobs_completed_.load();
  snap.jobs_rejected = jobs_rejected_.load();
  snap.jobs_failed = jobs_failed_.load();
  snap.accept_failures = accept_failures_.load();
  snap.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    snap.quarantine_tracked = quarantine_.size();
    for (const auto& [key, entry] : quarantine_)
      if (options_.quarantine_strikes > 0 &&
          entry.strikes >= options_.quarantine_strikes)
        ++snap.quarantine_active;
  }
  snap.quarantine_fast_fails = quarantine_fast_fails_.load();
  snap.quarantine_trips = quarantine_trips_.load();
  return snap;
}

bool Server::quarantine_lookup(const QuarantineKey& key) {
  if (options_.quarantine_strikes == 0) return false;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  const auto it = quarantine_.find(key);
  if (it == quarantine_.end()) return false;
  if (options_.quarantine_ttl_seconds > 0 &&
      std::chrono::duration<double>(Clock::now() - it->second.last_strike)
              .count() > options_.quarantine_ttl_seconds) {
    // Expired: the strike record is forgiven wholesale, so a once-poisonous
    // job gets a full fresh set of strikes, not an instant re-trip.
    quarantine_.erase(it);
    return false;
  }
  return it->second.strikes >= options_.quarantine_strikes;
}

void Server::quarantine_strike(const QuarantineKey& key) {
  if (options_.quarantine_strikes == 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  QuarantineEntry& entry = quarantine_[key];
  ++entry.strikes;
  entry.last_strike = Clock::now();
  GFA_COUNT("service.quarantined.strikes", 1);
  if (entry.strikes == options_.quarantine_strikes) {
    ++quarantine_trips_;
    GFA_COUNT("service.quarantined.tripped", 1);
    GFA_LOG_WARN("service", "quarantined a job fingerprint (engine "
                                << key.engine << ") after " << entry.strikes
                                << " worker crash(es)");
  }
}

std::size_t Server::clear_quarantine() {
  std::size_t cleared;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    cleared = quarantine_.size();
    quarantine_.clear();
  }
  if (cleared > 0)
    GFA_LOG_INFO("service",
                 "clear-quarantine dropped " << cleared << " fingerprint(s)");
  return cleared;
}

const Gf2k* Server::field_for(unsigned k) {
  std::lock_guard<std::mutex> lock(fields_mu_);
  const auto it = fields_.find(k);
  if (it != fields_.end()) return it->second.get();
  Result<Gf2k> field = Gf2k::try_make(k);
  if (!field.ok()) return nullptr;
  // Fields live for the server's lifetime: decoded WordFunctions hold MPoly
  // values whose coefficient arithmetic points back at the field.
  return fields_.emplace(k, std::make_unique<Gf2k>(std::move(*field)))
      .first->second.get();
}

}  // namespace gfa::service
