#include "service/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "worker/protocol.h"

namespace gfa::service {

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& rhs) noexcept
    : fd_(rhs.fd_), next_id_(rhs.next_id_) {
  rhs.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& rhs) noexcept {
  if (this != &rhs) {
    close();
    fd_ = rhs.fd_;
    next_id_ = rhs.next_id_;
    rhs.fd_ = -1;
  }
  return *this;
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ServiceClient> ServiceClient::connect(const std::string& socket_path) {
  struct sockaddr_un addr;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    return Status::invalid_argument("bad socket path '" + socket_path + "'");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return Status::internal(std::string("socket(): ") + std::strerror(errno));
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::unsupported("cannot connect to '" + socket_path +
                               "': " + std::strerror(err) +
                               " (is gfa_serve running?)");
  }
  ServiceClient client;
  client.fd_ = fd;
  return client;
}

Result<std::uint64_t> ServiceClient::send(JobRequest req) {
  if (fd_ < 0) return Status::invalid_argument("client is not connected");
  if (req.id == 0) req.id = next_id_++;
  if (Status s = worker::write_frame(fd_, encode_job_request(req)); !s.ok())
    return s;
  return req.id;
}

Result<JobResponse> ServiceClient::receive(double timeout_seconds) {
  if (fd_ < 0) return Status::invalid_argument("client is not connected");
  const Deadline deadline = timeout_seconds > 0.0
                                ? Deadline::after(timeout_seconds)
                                : Deadline::infinite();
  Result<std::string> frame = worker::read_frame(fd_, deadline);
  if (!frame.ok()) return frame.status();
  return decode_job_response(*frame);
}

Result<JobResponse> ServiceClient::call(JobRequest req,
                                        double timeout_seconds) {
  const Result<std::uint64_t> id = send(std::move(req));
  if (!id.ok()) return id.status();
  Result<JobResponse> resp = receive(timeout_seconds);
  if (!resp.ok()) return resp;
  if (resp->id != *id)
    return Status::internal("response for job " + std::to_string(resp->id) +
                            " arrived while waiting for job " +
                            std::to_string(*id) +
                            " (pipelined calls must use send/receive)");
  return resp;
}

Result<std::string> ServiceClient::status_json(double timeout_seconds) {
  JobRequest req;
  req.op = "status";
  req.id = next_id_++;
  if (Status s = worker::write_frame(fd_, encode_job_request(req)); !s.ok())
    return s;
  const Deadline deadline = timeout_seconds > 0.0
                                ? Deadline::after(timeout_seconds)
                                : Deadline::infinite();
  return worker::read_frame(fd_, deadline);
}

Result<std::vector<BatchOutcome>> run_batch(ServiceClient& client,
                                            std::vector<JobRequest> requests,
                                            double timeout_seconds) {
  std::unordered_map<std::uint64_t, std::size_t> pending;  // id -> index
  std::vector<BatchOutcome> outcomes(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Result<std::uint64_t> id = client.send(requests[i]);
    if (!id.ok()) return id.status();
    requests[i].id = *id;
    outcomes[i].request = requests[i];
    pending.emplace(*id, i);
  }
  while (!pending.empty()) {
    Result<JobResponse> resp = client.receive(timeout_seconds);
    if (!resp.ok()) {
      if (resp.status().code() == StatusCode::kDeadlineExceeded)
        return resp.status();
      // The server hung up with jobs outstanding: surface every unanswered
      // job explicitly instead of dropping it from the report.
      for (const auto& [id, index] : pending) {
        outcomes[index].response.id = id;
        outcomes[index].response.status = Status::worker_crashed(
            "server closed the connection before answering: " +
            resp.status().message());
      }
      return outcomes;
    }
    const auto it = pending.find(resp->id);
    if (it == pending.end()) continue;  // stray id: not ours, ignore
    outcomes[it->second].response = std::move(*resp);
    pending.erase(it);
  }
  return outcomes;
}

int batch_exit_code(const std::vector<BatchOutcome>& outcomes) {
  int worst_failure = 0;
  bool any_not_equivalent = false;
  bool any_unknown = false;
  for (const BatchOutcome& o : outcomes) {
    if (!o.response.status.ok()) {
      const int code = exit_code_for(o.response.status.code());
      if (code > worst_failure) worst_failure = code;
      continue;
    }
    if (o.response.verdict == engine::Verdict::kNotEquivalent)
      any_not_equivalent = true;
    else if (o.response.verdict == engine::Verdict::kUnknown)
      any_unknown = true;
  }
  if (worst_failure != 0) return worst_failure;
  if (any_not_equivalent) return 1;
  if (any_unknown) return 3;
  return 0;
}

}  // namespace gfa::service
