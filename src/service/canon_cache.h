#pragma once
// Content-addressed cache of extracted canonical forms.
//
// The paper's workloads reuse identical circuit blocks heavily — hierarchical
// designs instantiate one multiplier many times, and batch trojan/mutation
// analysis re-verifies near-identical netlists. The expensive half of every
// abstraction-engine job is extraction (backward rewriting + Frobenius lift);
// the cheap half is the coefficient match. This cache keys the *extraction
// result* (a serialized WordFunction, see abstraction/canon_serial.h) on the
// circuit's FNV-1a content hash plus the field (k, P(x)) and the
// serialization format version, so a repeated circuit skips straight to the
// coefficient match.
//
// Integrity model — identical to checkpoints: every entry is framed as
//
//   magic    8 bytes  "GFA_CANF"
//   u32      version  (kCanonEntryVersion)
//   u64      circuit_hash   } the key, stored so a renamed/misfiled entry
//   u32      k              } can never be served for the wrong circuit
//   u64      fingerprint    }
//   u32      payload length, then that many bytes (canon_serial JSON)
//   u32      CRC-32 of everything above
//
// and validated on every get(): bad magic, version skew, key mismatch, or a
// CRC failure drops the entry (and its file) and reports a miss. Damage is
// therefore miss-and-recompute — never a wrong verdict; a hit still runs the
// coefficient match against the requested counterpart. The "cache:corrupt"
// fault site fires in put(), flipping one stored payload byte so tests can
// prove the guard catches it.
//
// Bounded: entries are LRU-evicted past max_bytes. Optionally persistent:
// with a directory configured, entries are mirrored to disk (atomic tmp +
// rename, like checkpoints) and warm-loaded by open(), so a drained daemon's
// work survives restarts. All methods are thread-safe.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gf/gf2k.h"
#include "util/status.h"

namespace gfa::service {

inline constexpr std::uint32_t kCanonEntryVersion = 1;

/// What a canonical form is content-addressed by. Two jobs may share an
/// entry iff all three match: same circuit text (hash), same field degree,
/// and same fingerprint (modulus + format version — the "options" of
/// extraction that affect the canonical form).
struct CacheKey {
  std::uint64_t circuit_hash = 0;
  unsigned k = 0;
  std::uint64_t fingerprint = 0;

  bool operator==(const CacheKey& rhs) const = default;
};

/// FNV-1a over the field's modulus words and the canon_serial format
/// version: the part of the key that invalidates entries when the field
/// construction or the serialization schema changes.
std::uint64_t cache_fingerprint(const Gf2k& field);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_bytes = 0;
};

class CanonCache {
 public:
  struct Options {
    /// Mirror entries under this directory (empty = memory only).
    std::string directory;
    /// LRU byte bound over the framed entries (0 = a very small cache that
    /// holds nothing — callers should pass a real bound).
    std::uint64_t max_bytes = 64ull << 20;
  };

  explicit CanonCache(Options options);

  /// Validates/creates the directory (kInvalidArgument with the concrete
  /// reason on a missing parent or unwritable path — see
  /// worker::ensure_directory) and warm-loads any persisted entries, oldest
  /// dropped first if they exceed max_bytes. A no-op without a directory.
  Status open();

  /// The payload for `key`, or nullopt on a miss. A damaged entry (CRC,
  /// magic, version, or key mismatch) is dropped — file included — and
  /// reported as a miss.
  std::optional<std::string> get(const CacheKey& key);

  /// Frames and stores `payload` under `key`, evicting LRU entries past
  /// max_bytes, and mirrors the entry to disk when a directory is
  /// configured. Consumes the "cache:corrupt" fault site: when armed, one
  /// stored payload byte is flipped (CRC left stale) so the next get() must
  /// reject the entry. Oversized payloads (> max_bytes alone) are dropped.
  void put(const CacheKey& key, const std::string& payload);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string bytes;      // framed (magic..CRC)
    std::uint64_t last_use = 0;
  };

  std::string file_of(const CacheKey& key) const;
  void evict_locked();
  void drop_locked(const std::string& name, bool count_corrupt);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // by key_name
  std::uint64_t bytes_ = 0;
  std::uint64_t use_clock_ = 0;
  CacheStats stats_;
};

/// "0123456789abcdef.8.fedcba9876543210" — the key's canonical file stem.
std::string key_name(const CacheKey& key);

/// Frames a payload (see the header comment's layout).
std::string frame_entry(const CacheKey& key, const std::string& payload);

/// Validates a framed entry against `key`; returns the payload or why the
/// entry must be dropped.
Result<std::string> unframe_entry(const CacheKey& key,
                                  const std::string& bytes);

}  // namespace gfa::service
