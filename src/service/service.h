#pragma once
// The verification service: a long-running daemon over a Unix-domain socket.
//
// gfa_serve turns the one-shot verification pipeline into a resident server
// for batch workloads (hierarchical designs, trojan/mutation sweeps) that
// submit many jobs over time. Architecture, in the order a job crosses it:
//
//   client ──frame──> acceptor ──> per-connection reader ──> bounded queue
//                                                             │ (admission)
//             worker pool (N threads) <───────────────────────┘
//             │  canonical-form cache probe (CanonCache)
//             │  hit:  decode + coefficient match, no fork
//             │  miss: run_isolated_with_retry (forked worker, crash
//             │        containment, stall detector, retries) and store the
//             │        exported canonical forms
//             └──frame──> client (per-job JSON response, by job id)
//
// Robustness properties, each covered by tests/service_test.cpp:
//   * Admission control: a verify request arriving with the queue at
//     --queue-depth is answered immediately with kResourceExhausted
//     ("server overloaded") — memory is bounded by design, and clients get
//     explicit backpressure instead of silent latency.
//   * Containment: jobs run in forked workers via the existing harness; a
//     crashing (or stalling) job is classified kWorkerCrashed for *that*
//     client and the daemon keeps serving everyone else.
//   * Limit inheritance: per-job deadlines/budgets default from and are
//     capped by the server's --default/--max flags, so one client cannot
//     request an unbounded job on a shared server.
//   * Graceful drain: SIGTERM/SIGINT stops accepting (the socket file is
//     unlinked), finishes every queued and in-flight job, answers the
//     waiting clients, and exits 0.
//   * Health: a "status" request answers from the accept path with pool,
//     queue, job, cache, quarantine, and (when enabled) metrics snapshots.
//   * Verdict certification: a cache hit that claims kEquivalent is
//     cross-checked by random simulation before it is handed out (and cache
//     misses ship RunOptions::certify to the forked worker); a disagreement
//     answers kCertificationFailed — a loud internal error, never a silent
//     wrong answer. See DESIGN.md "Verdict certification".
//   * Poison-job quarantine: jobs are fingerprinted by (spec content hash,
//     impl content hash, engine); a fingerprint whose workers crashed
//     --quarantine-strikes times fast-fails with kWorkerCrashed *without
//     forking*, so one poisonous netlist cannot monopolize the pool with
//     crash-restart cycles. Entries expire after --quarantine-ttl, and a
//     "clear-quarantine" request resets the table.
//
// Wire protocol: the worker layer's length-prefixed JSON frames
// (worker/protocol.h) over SOCK_STREAM. Requests are
//   {"op":"verify","id":7,"spec_path":...,"impl_path":...,"k":8,...}
//   {"op":"status","id":1}
//   {"op":"clear-quarantine","id":2}
// and every response echoes the op and id, so a client may pipeline jobs and
// match answers out of order.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "certify/counterexample.h"
#include "engine/engine.h"
#include "gf/gf2k.h"
#include "service/canon_cache.h"
#include "util/status.h"

namespace gfa::service {

/// One client request off the wire. op is "verify", "status", or
/// "clear-quarantine".
struct JobRequest {
  std::string op = "verify";
  std::uint64_t id = 0;
  std::string spec_path;
  std::string impl_path;
  unsigned k = 0;
  std::string engine = "abstraction";
  /// 0 = inherit the server default (then the server cap still applies).
  double timeout_seconds = 0.0;
  std::uint64_t memory_budget_bytes = 0;
  /// Skip the canonical-form cache for this job (cold-run comparisons).
  bool no_cache = false;
};

/// One per-job answer. `cache` is "hit", "stored", "miss", or "" (status
/// replies and non-cacheable engines).
struct JobResponse {
  std::string op = "verify";
  std::uint64_t id = 0;
  Status status;
  engine::Verdict verdict = engine::Verdict::kUnknown;
  std::string detail;
  /// Typed simulator-replayed witness for kNotEquivalent verdicts (see
  /// certify/counterexample.h); empty otherwise.
  certify::Counterexample counterexample;
  double wall_ms = 0.0;
  std::string cache;
  std::map<std::string, double> stats;
};

std::string encode_job_request(const JobRequest& req);
Result<JobRequest> decode_job_request(std::string_view json);

std::string encode_job_response(const JobResponse& resp);
Result<JobResponse> decode_job_response(std::string_view json);

struct ServerOptions {
  std::string socket_path;
  /// Concurrent verification jobs (forked workers / cache probes).
  unsigned pool_size = 2;
  /// Jobs waiting beyond the pool before admission control rejects.
  std::size_t queue_depth = 16;
  /// Canonical-form cache: on by default, optionally disk-backed.
  bool cache_enabled = true;
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 64ull << 20;
  /// Per-job limit inheritance: jobs not asking get the defaults; jobs
  /// asking for more than a cap are clamped to it (0 = no default / no cap).
  double default_timeout_seconds = 0.0;
  double max_timeout_seconds = 0.0;
  std::uint64_t default_memory_budget_bytes = 0;
  std::uint64_t max_memory_budget_bytes = 0;
  /// Crash containment: total forked attempts per job (>= 1).
  unsigned max_attempts = 2;
  /// Worker telemetry, passed through to every forked child.
  double heartbeat_interval_seconds = 1.0;
  double stall_timeout_seconds = 0.0;
  /// Poison-job quarantine: after this many final kWorkerCrashed outcomes
  /// for the same (spec hash, impl hash, engine) fingerprint, identical
  /// submissions fast-fail without forking. 0 disables quarantining.
  unsigned quarantine_strikes = 3;
  /// Seconds a fingerprint's strike record survives after its last crash
  /// (0 = until clear-quarantine or restart).
  double quarantine_ttl_seconds = 0.0;
  /// Cross-check every kEquivalent answer by random simulation: cache hits
  /// are certified in-process, cache misses ship RunOptions::certify to the
  /// forked worker (--no-certify turns this off).
  bool certify = true;
};

/// Point-in-time health snapshot, served for "status" requests.
struct ServiceSnapshot {
  unsigned pool_size = 0;
  unsigned busy = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool draining = false;
  double uptime_seconds = 0.0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_failed = 0;     // completed with a non-OK status
  std::uint64_t accept_failures = 0;
  CacheStats cache;
  /// Quarantine table: fingerprints with at least one strike / past the
  /// strike threshold, plus lifetime fast-fail and trip counters.
  std::size_t quarantine_tracked = 0;
  std::size_t quarantine_active = 0;
  std::uint64_t quarantine_fast_fails = 0;
  std::uint64_t quarantine_trips = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (replacing a stale file, refusing a live server),
  /// opens the cache, and spawns the worker pool. kInvalidArgument on a bad
  /// socket/cache path, kInternal on socket errors.
  Status start();

  /// The accept loop; blocks until a drain completes. Returns the process
  /// exit code (0 for a clean drain). Call after start().
  int serve();

  /// Begin a graceful drain (idempotent, any thread). Signal handlers call
  /// notify_drain_from_signal() instead.
  void request_drain();

  /// Async-signal-safe drain kick for SIGTERM/SIGINT handlers: one write to
  /// the wake pipe; the accept loop does the actual state change.
  void notify_drain_from_signal();

  ServiceSnapshot snapshot() const;

  /// Drops every quarantine record (the "clear-quarantine" op); returns how
  /// many fingerprints were being tracked.
  std::size_t clear_quarantine();

 private:
  struct Connection;
  struct Job;

  /// The quarantine fingerprint: the job's *content*, not its paths, so a
  /// renamed copy of a poisonous netlist is still recognized.
  struct QuarantineKey {
    std::uint64_t spec_hash = 0;
    std::uint64_t impl_hash = 0;
    std::string engine;
    bool operator<(const QuarantineKey& o) const {
      if (spec_hash != o.spec_hash) return spec_hash < o.spec_hash;
      if (impl_hash != o.impl_hash) return impl_hash < o.impl_hash;
      return engine < o.engine;
    }
  };
  struct QuarantineEntry {
    unsigned strikes = 0;
    std::chrono::steady_clock::time_point last_strike;
  };

  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const std::string& frame);
  void run_job(Job job);
  JobResponse run_verify(const JobRequest& req);
  void respond(const std::shared_ptr<Connection>& conn,
               const JobResponse& resp);
  std::string encode_status_response(std::uint64_t id) const;
  const Gf2k* field_for(unsigned k);
  /// True when the fingerprint is past the strike threshold (expiring the
  /// record first when the TTL has lapsed).
  bool quarantine_lookup(const QuarantineKey& key);
  /// Records one final kWorkerCrashed outcome against the fingerprint.
  void quarantine_strike(const QuarantineKey& key);

  ServerOptions options_;
  CanonCache cache_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::chrono::steady_clock::time_point started_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> stop_readers_{false};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;   // workers wait for jobs
  std::condition_variable drain_cv_;   // serve() waits for quiescence
  std::deque<Job> queue_;
  unsigned busy_ = 0;

  std::vector<std::thread> workers_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;

  std::mutex fields_mu_;
  std::map<unsigned, std::unique_ptr<Gf2k>> fields_;

  mutable std::mutex quarantine_mu_;
  std::map<QuarantineKey, QuarantineEntry> quarantine_;
  std::atomic<std::uint64_t> quarantine_fast_fails_{0};
  std::atomic<std::uint64_t> quarantine_trips_{0};

  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
};

}  // namespace gfa::service
