#pragma once
// Client side of the verification service (see service.h for the protocol).
//
// A ServiceClient owns one connected Unix-domain socket. Requests may be
// pipelined — send N verify jobs, then collect N responses — and responses
// are matched to requests by job id, so the server's pool may answer them in
// any order. The client is single-threaded by design: one connection, one
// caller; open more clients for concurrency (the soak test does exactly
// that).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/service.h"
#include "util/status.h"

namespace gfa::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& rhs) noexcept;
  ServiceClient& operator=(ServiceClient&& rhs) noexcept;

  /// Connects to a listening gfa_serve. kUnsupported when the socket file
  /// does not exist or nothing is listening (the server is down or
  /// draining), kInvalidArgument on a malformed path.
  static Result<ServiceClient> connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request frame. Assigns the request a fresh id when it has
  /// none (id 0) and returns the id in use.
  Result<std::uint64_t> send(JobRequest req);

  /// Receives the next response frame, whatever job it answers.
  /// kDeadlineExceeded when `timeout_seconds` (0 = forever) elapses first,
  /// kWorkerCrashed when the server hangs up mid-stream.
  Result<JobResponse> receive(double timeout_seconds = 0.0);

  /// send() + receive-until-matching-id: the simple synchronous call. Other
  /// jobs' responses arriving first are an error here (do not mix with
  /// pipelining).
  Result<JobResponse> call(JobRequest req, double timeout_seconds = 0.0);

  /// Raw status-request round trip; returns the server's JSON snapshot text
  /// (the schema is the server's, not re-parsed into a struct here).
  Result<std::string> status_json(double timeout_seconds = 0.0);

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

/// One batch job outcome, as gfa_client reports it.
struct BatchOutcome {
  JobRequest request;
  JobResponse response;
};

/// Pipelines every request over `client` and collects all responses,
/// re-attached to their requests by id. Jobs the server never answered (it
/// hung up) come back with kWorkerCrashed responses rather than being
/// silently dropped. `timeout_seconds` bounds each receive, not the batch.
Result<std::vector<BatchOutcome>> run_batch(ServiceClient& client,
                                            std::vector<JobRequest> requests,
                                            double timeout_seconds = 0.0);

/// The gfa_client exit-code policy over a finished batch: the worst failure's
/// exit code when any job failed, else 1 when any verdict is not-equivalent,
/// else 3 when any is unknown, else 0.
int batch_exit_code(const std::vector<BatchOutcome>& outcomes);

}  // namespace gfa::service
